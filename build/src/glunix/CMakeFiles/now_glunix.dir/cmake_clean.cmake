file(REMOVE_RECURSE
  "CMakeFiles/now_glunix.dir/collectives.cpp.o"
  "CMakeFiles/now_glunix.dir/collectives.cpp.o.d"
  "CMakeFiles/now_glunix.dir/coschedule.cpp.o"
  "CMakeFiles/now_glunix.dir/coschedule.cpp.o.d"
  "CMakeFiles/now_glunix.dir/glunix.cpp.o"
  "CMakeFiles/now_glunix.dir/glunix.cpp.o.d"
  "CMakeFiles/now_glunix.dir/overlay_sim.cpp.o"
  "CMakeFiles/now_glunix.dir/overlay_sim.cpp.o.d"
  "CMakeFiles/now_glunix.dir/spmd.cpp.o"
  "CMakeFiles/now_glunix.dir/spmd.cpp.o.d"
  "libnow_glunix.a"
  "libnow_glunix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_glunix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
