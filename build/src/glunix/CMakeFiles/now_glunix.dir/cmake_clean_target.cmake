file(REMOVE_RECURSE
  "libnow_glunix.a"
)
