# Empty compiler generated dependencies file for now_glunix.
# This may be replaced when dependencies are built.
