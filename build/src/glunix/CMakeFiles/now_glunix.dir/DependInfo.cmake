
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/glunix/collectives.cpp" "src/glunix/CMakeFiles/now_glunix.dir/collectives.cpp.o" "gcc" "src/glunix/CMakeFiles/now_glunix.dir/collectives.cpp.o.d"
  "/root/repo/src/glunix/coschedule.cpp" "src/glunix/CMakeFiles/now_glunix.dir/coschedule.cpp.o" "gcc" "src/glunix/CMakeFiles/now_glunix.dir/coschedule.cpp.o.d"
  "/root/repo/src/glunix/glunix.cpp" "src/glunix/CMakeFiles/now_glunix.dir/glunix.cpp.o" "gcc" "src/glunix/CMakeFiles/now_glunix.dir/glunix.cpp.o.d"
  "/root/repo/src/glunix/overlay_sim.cpp" "src/glunix/CMakeFiles/now_glunix.dir/overlay_sim.cpp.o" "gcc" "src/glunix/CMakeFiles/now_glunix.dir/overlay_sim.cpp.o.d"
  "/root/repo/src/glunix/spmd.cpp" "src/glunix/CMakeFiles/now_glunix.dir/spmd.cpp.o" "gcc" "src/glunix/CMakeFiles/now_glunix.dir/spmd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/now_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/now_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/now_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
