file(REMOVE_RECURSE
  "libnow_models.a"
)
