
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/access.cpp" "src/models/CMakeFiles/now_models.dir/access.cpp.o" "gcc" "src/models/CMakeFiles/now_models.dir/access.cpp.o.d"
  "/root/repo/src/models/cost.cpp" "src/models/CMakeFiles/now_models.dir/cost.cpp.o" "gcc" "src/models/CMakeFiles/now_models.dir/cost.cpp.o.d"
  "/root/repo/src/models/gator.cpp" "src/models/CMakeFiles/now_models.dir/gator.cpp.o" "gcc" "src/models/CMakeFiles/now_models.dir/gator.cpp.o.d"
  "/root/repo/src/models/logp.cpp" "src/models/CMakeFiles/now_models.dir/logp.cpp.o" "gcc" "src/models/CMakeFiles/now_models.dir/logp.cpp.o.d"
  "/root/repo/src/models/techtrend.cpp" "src/models/CMakeFiles/now_models.dir/techtrend.cpp.o" "gcc" "src/models/CMakeFiles/now_models.dir/techtrend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
