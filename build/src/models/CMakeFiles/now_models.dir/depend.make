# Empty dependencies file for now_models.
# This may be replaced when dependencies are built.
