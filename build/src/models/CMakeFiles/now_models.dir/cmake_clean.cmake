file(REMOVE_RECURSE
  "CMakeFiles/now_models.dir/access.cpp.o"
  "CMakeFiles/now_models.dir/access.cpp.o.d"
  "CMakeFiles/now_models.dir/cost.cpp.o"
  "CMakeFiles/now_models.dir/cost.cpp.o.d"
  "CMakeFiles/now_models.dir/gator.cpp.o"
  "CMakeFiles/now_models.dir/gator.cpp.o.d"
  "CMakeFiles/now_models.dir/logp.cpp.o"
  "CMakeFiles/now_models.dir/logp.cpp.o.d"
  "CMakeFiles/now_models.dir/techtrend.cpp.o"
  "CMakeFiles/now_models.dir/techtrend.cpp.o.d"
  "libnow_models.a"
  "libnow_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
