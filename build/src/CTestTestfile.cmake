# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("proto")
subdirs("os")
subdirs("netram")
subdirs("coopcache")
subdirs("raid")
subdirs("xfs")
subdirs("glunix")
subdirs("trace")
subdirs("models")
subdirs("core")
