file(REMOVE_RECURSE
  "libnow_trace.a"
)
