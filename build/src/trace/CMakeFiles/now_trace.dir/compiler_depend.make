# Empty compiler generated dependencies file for now_trace.
# This may be replaced when dependencies are built.
