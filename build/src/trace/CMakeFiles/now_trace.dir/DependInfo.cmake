
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/fs_trace.cpp" "src/trace/CMakeFiles/now_trace.dir/fs_trace.cpp.o" "gcc" "src/trace/CMakeFiles/now_trace.dir/fs_trace.cpp.o.d"
  "/root/repo/src/trace/nfs_trace.cpp" "src/trace/CMakeFiles/now_trace.dir/nfs_trace.cpp.o" "gcc" "src/trace/CMakeFiles/now_trace.dir/nfs_trace.cpp.o.d"
  "/root/repo/src/trace/parallel_trace.cpp" "src/trace/CMakeFiles/now_trace.dir/parallel_trace.cpp.o" "gcc" "src/trace/CMakeFiles/now_trace.dir/parallel_trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/now_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/now_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/usage_trace.cpp" "src/trace/CMakeFiles/now_trace.dir/usage_trace.cpp.o" "gcc" "src/trace/CMakeFiles/now_trace.dir/usage_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
