file(REMOVE_RECURSE
  "CMakeFiles/now_trace.dir/fs_trace.cpp.o"
  "CMakeFiles/now_trace.dir/fs_trace.cpp.o.d"
  "CMakeFiles/now_trace.dir/nfs_trace.cpp.o"
  "CMakeFiles/now_trace.dir/nfs_trace.cpp.o.d"
  "CMakeFiles/now_trace.dir/parallel_trace.cpp.o"
  "CMakeFiles/now_trace.dir/parallel_trace.cpp.o.d"
  "CMakeFiles/now_trace.dir/trace_io.cpp.o"
  "CMakeFiles/now_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/now_trace.dir/usage_trace.cpp.o"
  "CMakeFiles/now_trace.dir/usage_trace.cpp.o.d"
  "libnow_trace.a"
  "libnow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
