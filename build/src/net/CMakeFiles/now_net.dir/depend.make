# Empty dependencies file for now_net.
# This may be replaced when dependencies are built.
