file(REMOVE_RECURSE
  "libnow_net.a"
)
