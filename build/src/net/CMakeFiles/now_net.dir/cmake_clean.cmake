file(REMOVE_RECURSE
  "CMakeFiles/now_net.dir/network.cpp.o"
  "CMakeFiles/now_net.dir/network.cpp.o.d"
  "CMakeFiles/now_net.dir/presets.cpp.o"
  "CMakeFiles/now_net.dir/presets.cpp.o.d"
  "CMakeFiles/now_net.dir/shared_bus.cpp.o"
  "CMakeFiles/now_net.dir/shared_bus.cpp.o.d"
  "CMakeFiles/now_net.dir/switched.cpp.o"
  "CMakeFiles/now_net.dir/switched.cpp.o.d"
  "libnow_net.a"
  "libnow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
