file(REMOVE_RECURSE
  "CMakeFiles/now_netram.dir/multigrid.cpp.o"
  "CMakeFiles/now_netram.dir/multigrid.cpp.o.d"
  "CMakeFiles/now_netram.dir/pager.cpp.o"
  "CMakeFiles/now_netram.dir/pager.cpp.o.d"
  "CMakeFiles/now_netram.dir/registry.cpp.o"
  "CMakeFiles/now_netram.dir/registry.cpp.o.d"
  "libnow_netram.a"
  "libnow_netram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/now_netram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
