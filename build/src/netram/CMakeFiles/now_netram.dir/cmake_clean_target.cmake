file(REMOVE_RECURSE
  "libnow_netram.a"
)
