# Empty compiler generated dependencies file for now_netram.
# This may be replaced when dependencies are built.
