
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netram/multigrid.cpp" "src/netram/CMakeFiles/now_netram.dir/multigrid.cpp.o" "gcc" "src/netram/CMakeFiles/now_netram.dir/multigrid.cpp.o.d"
  "/root/repo/src/netram/pager.cpp" "src/netram/CMakeFiles/now_netram.dir/pager.cpp.o" "gcc" "src/netram/CMakeFiles/now_netram.dir/pager.cpp.o.d"
  "/root/repo/src/netram/registry.cpp" "src/netram/CMakeFiles/now_netram.dir/registry.cpp.o" "gcc" "src/netram/CMakeFiles/now_netram.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/now_os.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/now_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
