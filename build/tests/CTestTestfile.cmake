# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/netram_test[1]_include.cmake")
include("/root/repo/build/tests/coopcache_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/raid_test[1]_include.cmake")
include("/root/repo/build/tests/glunix_test[1]_include.cmake")
include("/root/repo/build/tests/xfs_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/logp_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
