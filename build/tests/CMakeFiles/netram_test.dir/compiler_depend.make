# Empty compiler generated dependencies file for netram_test.
# This may be replaced when dependencies are built.
