file(REMOVE_RECURSE
  "CMakeFiles/netram_test.dir/netram_test.cpp.o"
  "CMakeFiles/netram_test.dir/netram_test.cpp.o.d"
  "netram_test"
  "netram_test.pdb"
  "netram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
