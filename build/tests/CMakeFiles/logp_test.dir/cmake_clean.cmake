file(REMOVE_RECURSE
  "CMakeFiles/logp_test.dir/logp_test.cpp.o"
  "CMakeFiles/logp_test.dir/logp_test.cpp.o.d"
  "logp_test"
  "logp_test.pdb"
  "logp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
