# Empty compiler generated dependencies file for logp_test.
# This may be replaced when dependencies are built.
