# Empty dependencies file for coopcache_test.
# This may be replaced when dependencies are built.
