file(REMOVE_RECURSE
  "CMakeFiles/coopcache_test.dir/coopcache_test.cpp.o"
  "CMakeFiles/coopcache_test.dir/coopcache_test.cpp.o.d"
  "coopcache_test"
  "coopcache_test.pdb"
  "coopcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
