file(REMOVE_RECURSE
  "CMakeFiles/raid_test.dir/raid_test.cpp.o"
  "CMakeFiles/raid_test.dir/raid_test.cpp.o.d"
  "raid_test"
  "raid_test.pdb"
  "raid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
