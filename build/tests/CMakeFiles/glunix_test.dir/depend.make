# Empty dependencies file for glunix_test.
# This may be replaced when dependencies are built.
