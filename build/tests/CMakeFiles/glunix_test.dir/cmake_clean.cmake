file(REMOVE_RECURSE
  "CMakeFiles/glunix_test.dir/glunix_test.cpp.o"
  "CMakeFiles/glunix_test.dir/glunix_test.cpp.o.d"
  "glunix_test"
  "glunix_test.pdb"
  "glunix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glunix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
