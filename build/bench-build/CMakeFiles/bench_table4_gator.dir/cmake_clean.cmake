file(REMOVE_RECURSE
  "../bench/bench_table4_gator"
  "../bench/bench_table4_gator.pdb"
  "CMakeFiles/bench_table4_gator.dir/bench_table4_gator.cpp.o"
  "CMakeFiles/bench_table4_gator.dir/bench_table4_gator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
