# Empty dependencies file for bench_xfs_vs_central.
# This may be replaced when dependencies are built.
