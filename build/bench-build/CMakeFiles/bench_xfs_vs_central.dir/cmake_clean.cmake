file(REMOVE_RECURSE
  "../bench/bench_xfs_vs_central"
  "../bench/bench_xfs_vs_central.pdb"
  "CMakeFiles/bench_xfs_vs_central.dir/bench_xfs_vs_central.cpp.o"
  "CMakeFiles/bench_xfs_vs_central.dir/bench_xfs_vs_central.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xfs_vs_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
