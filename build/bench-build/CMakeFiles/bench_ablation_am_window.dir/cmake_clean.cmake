file(REMOVE_RECURSE
  "../bench/bench_ablation_am_window"
  "../bench/bench_ablation_am_window.pdb"
  "CMakeFiles/bench_ablation_am_window.dir/bench_ablation_am_window.cpp.o"
  "CMakeFiles/bench_ablation_am_window.dir/bench_ablation_am_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_am_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
