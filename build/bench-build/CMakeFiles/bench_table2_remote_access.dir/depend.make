# Empty dependencies file for bench_table2_remote_access.
# This may be replaced when dependencies are built.
