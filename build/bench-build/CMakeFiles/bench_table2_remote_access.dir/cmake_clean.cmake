file(REMOVE_RECURSE
  "../bench/bench_table2_remote_access"
  "../bench/bench_table2_remote_access.pdb"
  "CMakeFiles/bench_table2_remote_access.dir/bench_table2_remote_access.cpp.o"
  "CMakeFiles/bench_table2_remote_access.dir/bench_table2_remote_access.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_remote_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
