file(REMOVE_RECURSE
  "../bench/bench_nfs_messages"
  "../bench/bench_nfs_messages.pdb"
  "CMakeFiles/bench_nfs_messages.dir/bench_nfs_messages.cpp.o"
  "CMakeFiles/bench_nfs_messages.dir/bench_nfs_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nfs_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
