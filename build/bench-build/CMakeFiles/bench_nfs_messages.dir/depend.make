# Empty dependencies file for bench_nfs_messages.
# This may be replaced when dependencies are built.
