file(REMOVE_RECURSE
  "../bench/bench_xfs"
  "../bench/bench_xfs.pdb"
  "CMakeFiles/bench_xfs.dir/bench_xfs.cpp.o"
  "CMakeFiles/bench_xfs.dir/bench_xfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
