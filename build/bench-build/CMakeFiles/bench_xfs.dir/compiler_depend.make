# Empty compiler generated dependencies file for bench_xfs.
# This may be replaced when dependencies are built.
