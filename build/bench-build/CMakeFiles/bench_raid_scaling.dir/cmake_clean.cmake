file(REMOVE_RECURSE
  "../bench/bench_raid_scaling"
  "../bench/bench_raid_scaling.pdb"
  "CMakeFiles/bench_raid_scaling.dir/bench_raid_scaling.cpp.o"
  "CMakeFiles/bench_raid_scaling.dir/bench_raid_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raid_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
