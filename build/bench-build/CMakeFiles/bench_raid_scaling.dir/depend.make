# Empty dependencies file for bench_raid_scaling.
# This may be replaced when dependencies are built.
