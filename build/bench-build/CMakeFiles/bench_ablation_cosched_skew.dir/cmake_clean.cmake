file(REMOVE_RECURSE
  "../bench/bench_ablation_cosched_skew"
  "../bench/bench_ablation_cosched_skew.pdb"
  "CMakeFiles/bench_ablation_cosched_skew.dir/bench_ablation_cosched_skew.cpp.o"
  "CMakeFiles/bench_ablation_cosched_skew.dir/bench_ablation_cosched_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cosched_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
