# Empty dependencies file for bench_table1_mpp_lag.
# This may be replaced when dependencies are built.
