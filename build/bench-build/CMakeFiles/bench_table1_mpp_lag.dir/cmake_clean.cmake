file(REMOVE_RECURSE
  "../bench/bench_table1_mpp_lag"
  "../bench/bench_table1_mpp_lag.pdb"
  "CMakeFiles/bench_table1_mpp_lag.dir/bench_table1_mpp_lag.cpp.o"
  "CMakeFiles/bench_table1_mpp_lag.dir/bench_table1_mpp_lag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mpp_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
