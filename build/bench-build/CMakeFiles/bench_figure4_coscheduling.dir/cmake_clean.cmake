file(REMOVE_RECURSE
  "../bench/bench_figure4_coscheduling"
  "../bench/bench_figure4_coscheduling.pdb"
  "CMakeFiles/bench_figure4_coscheduling.dir/bench_figure4_coscheduling.cpp.o"
  "CMakeFiles/bench_figure4_coscheduling.dir/bench_figure4_coscheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
