# Empty compiler generated dependencies file for bench_figure4_coscheduling.
# This may be replaced when dependencies are built.
