# Empty dependencies file for bench_figure3_mixed_workload.
# This may be replaced when dependencies are built.
