file(REMOVE_RECURSE
  "../bench/bench_figure3_mixed_workload"
  "../bench/bench_figure3_mixed_workload.pdb"
  "CMakeFiles/bench_figure3_mixed_workload.dir/bench_figure3_mixed_workload.cpp.o"
  "CMakeFiles/bench_figure3_mixed_workload.dir/bench_figure3_mixed_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
