file(REMOVE_RECURSE
  "../bench/bench_table3_coopcache"
  "../bench/bench_table3_coopcache.pdb"
  "CMakeFiles/bench_table3_coopcache.dir/bench_table3_coopcache.cpp.o"
  "CMakeFiles/bench_table3_coopcache.dir/bench_table3_coopcache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_coopcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
