
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_disk_sched.cpp" "bench-build/CMakeFiles/bench_ablation_disk_sched.dir/bench_ablation_disk_sched.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_disk_sched.dir/bench_ablation_disk_sched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/now_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/now_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/now_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
