# Empty dependencies file for bench_ablation_disk_sched.
# This may be replaced when dependencies are built.
