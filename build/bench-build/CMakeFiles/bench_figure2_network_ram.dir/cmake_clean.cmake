file(REMOVE_RECURSE
  "../bench/bench_figure2_network_ram"
  "../bench/bench_figure2_network_ram.pdb"
  "CMakeFiles/bench_figure2_network_ram.dir/bench_figure2_network_ram.cpp.o"
  "CMakeFiles/bench_figure2_network_ram.dir/bench_figure2_network_ram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_network_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
