# Empty compiler generated dependencies file for bench_figure2_network_ram.
# This may be replaced when dependencies are built.
