# Empty dependencies file for bench_figure1_cost.
# This may be replaced when dependencies are built.
