file(REMOVE_RECURSE
  "../bench/bench_comm_overhead"
  "../bench/bench_comm_overhead.pdb"
  "CMakeFiles/bench_comm_overhead.dir/bench_comm_overhead.cpp.o"
  "CMakeFiles/bench_comm_overhead.dir/bench_comm_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
