// LogP model tests, including cross-validation against the discrete-event
// simulator: the analytic model and the executable system must agree.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "models/logp.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "sim/engine.hpp"

namespace now::models {
namespace {

LogGpParams medusa_params(int p = 2) {
  return derive_loggp(proto::am_medusa(), net::fddi_medusa(), p);
}

TEST(LogP, MedusaConstantsMatchThePaper) {
  const LogGpParams p = medusa_params();
  // "processor overhead of 8 us ... network and adapter latency adds an
  // additional 8 us."
  EXPECT_NEAR(p.o_us, 8.0, 3.0);
  EXPECT_NEAR(p.L_us, 8.0, 8.0);  // + serialization of the 64-byte probe
}

TEST(LogP, OneWayAndRoundTripComposition) {
  const LogGpParams p = medusa_params();
  EXPECT_DOUBLE_EQ(logp_round_trip_us(p), 2 * logp_one_way_us(p));
  EXPECT_GT(logp_one_way_us(p), p.L_us);
}

TEST(LogP, LongMessagesApproachBandwidth) {
  const LogGpParams p = medusa_params();
  const double t1 = loggp_long_message_us(p, 1 << 20);
  // Effective bandwidth within 5 % of 1/G for a 1 MB message.
  const double bw = (1 << 20) / t1;
  EXPECT_NEAR(bw, 1.0 / p.G_us_per_byte, 0.05 / p.G_us_per_byte);
}

TEST(LogP, HalfPowerPointSameRegimeAsPaper) {
  // The paper: AM reaches half of peak bandwidth at ~175-byte messages —
  // two orders below TCP's ~1,350 B.  The derived model lands in the same
  // few-hundred-byte regime (the constants come from a 64-byte probe, so
  // exact agreement is not expected).
  const LogGpParams p = medusa_params();
  const double n_half = loggp_half_power_bytes(p);
  EXPECT_GT(n_half, 100);
  EXPECT_LT(n_half, 450);
  // And TCP's half-power point is several times larger, as measured.
  const LogGpParams tcp =
      derive_loggp(proto::tcp_kernel(), net::fddi_medusa(), 2);
  EXPECT_GT(loggp_half_power_bytes(tcp) / n_half, 3.0);
}

TEST(LogP, BroadcastGrowsLogarithmically) {
  double prev = 0;
  for (const int procs : {2, 4, 8, 16, 32, 64}) {
    const double t = logp_broadcast_us(medusa_params(procs));
    EXPECT_GT(t, prev);
    prev = t;
  }
  // Doubling P adds roughly one level: between 1.1x and 2x per doubling.
  const double t8 = logp_broadcast_us(medusa_params(8));
  const double t16 = logp_broadcast_us(medusa_params(16));
  EXPECT_LT(t16 / t8, 2.0);
  EXPECT_GT(t16 / t8, 1.05);
}

TEST(LogP, SendTrainRateIsGapLimited) {
  const LogGpParams p = medusa_params();
  const double t10 = logp_send_train_us(p, 10);
  const double t20 = logp_send_train_us(p, 20);
  EXPECT_NEAR(t20 - t10, 10 * std::max(p.g_us, p.o_us), 1e-9);
}

// --- Cross-validation against the DES --------------------------------

struct Rig {
  Rig() : fabric(engine, net::fddi_medusa()), mux(fabric) {
    proto::AmParams ap;
    ap.costs = proto::am_medusa();
    ap.window = 64;
    am = std::make_unique<proto::AmLayer>(mux, ap);
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), os::NodeParams{}));
      mux.attach_node(*nodes.back());
    }
  }
  sim::Engine engine;
  net::SwitchedNetwork fabric;
  proto::NicMux mux;
  std::unique_ptr<proto::AmLayer> am;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

TEST(LogP, SimulatorOneWayMatchesModel) {
  Rig rig;
  const auto e0 =
      rig.am->create_endpoint(*rig.nodes[0], proto::AmLayer::Mode::kInterrupt);
  const auto e1 =
      rig.am->create_endpoint(*rig.nodes[1], proto::AmLayer::Mode::kInterrupt);
  sim::SimTime at = -1;
  rig.am->register_handler(e1, 1, [&](const proto::AmMessage&) {
    at = rig.engine.now();
  });
  rig.am->send(e0, e1, 1, 64, {});
  rig.engine.run();
  const double measured_us = sim::to_us(at);
  const double predicted_us = logp_one_way_us(medusa_params());
  EXPECT_NEAR(measured_us, predicted_us, predicted_us * 0.25);
}

TEST(LogP, SimulatorRoundTripMatchesModel) {
  Rig rig;
  const auto e0 =
      rig.am->create_endpoint(*rig.nodes[0], proto::AmLayer::Mode::kInterrupt);
  const auto e1 =
      rig.am->create_endpoint(*rig.nodes[1], proto::AmLayer::Mode::kInterrupt);
  sim::SimTime done = -1;
  int pongs = 0;
  constexpr int kRounds = 50;
  rig.am->register_handler(e1, 1, [&](const proto::AmMessage&) {
    rig.am->send(e1, e0, 2, 64, {});
  });
  rig.am->register_handler(e0, 2, [&](const proto::AmMessage&) {
    if (++pongs < kRounds) {
      rig.am->send(e0, e1, 1, 64, {});
    } else {
      done = rig.engine.now();
    }
  });
  rig.am->send(e0, e1, 1, 64, {});
  rig.engine.run();
  const double measured_rtt = sim::to_us(done) / kRounds;
  const double predicted_rtt = logp_round_trip_us(medusa_params());
  EXPECT_NEAR(measured_rtt, predicted_rtt, predicted_rtt * 0.3);
}

TEST(LogP, SimulatorBulkBandwidthMatchesLogGp) {
  Rig rig;
  const auto e0 =
      rig.am->create_endpoint(*rig.nodes[0], proto::AmLayer::Mode::kInterrupt);
  const auto e1 =
      rig.am->create_endpoint(*rig.nodes[1], proto::AmLayer::Mode::kInterrupt);
  sim::SimTime at = -1;
  rig.am->register_handler(e1, 1, [&](const proto::AmMessage&) {
    at = rig.engine.now();
  });
  const std::uint32_t bytes = 1 << 20;
  rig.am->send(e0, e1, 1, bytes, {});
  rig.engine.run();
  const double measured_us = sim::to_us(at);
  const double predicted_us =
      loggp_long_message_us(medusa_params(), bytes);
  EXPECT_NEAR(measured_us, predicted_us, predicted_us * 0.35);
}

}  // namespace
}  // namespace now::models
