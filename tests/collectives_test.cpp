// Tests for AM collectives, including the LogP broadcast cross-check.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "glunix/collectives.hpp"
#include "models/logp.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "sim/engine.hpp"

namespace now::glunix {
namespace {

struct Rig {
  explicit Rig(int n) : fabric(engine, net::fddi_medusa()), mux(fabric) {
    proto::AmParams ap;
    ap.costs = proto::am_medusa();
    ap.window = 64;
    am = std::make_unique<proto::AmLayer>(mux, ap);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), os::NodeParams{}));
      mux.attach_node(*nodes.back());
    }
  }
  std::vector<os::Node*> ptrs() {
    std::vector<os::Node*> v;
    for (auto& n : nodes) v.push_back(n.get());
    return v;
  }
  sim::Engine engine;
  net::SwitchedNetwork fabric;
  proto::NicMux mux;
  std::unique_ptr<proto::AmLayer> am;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

class CollectivesWidth : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesWidth, BroadcastReachesEveryone) {
  Rig rig(GetParam());
  Collectives coll(*rig.am, rig.ptrs());
  bool done = false;
  coll.broadcast(0, 1024, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

TEST_P(CollectivesWidth, ReduceSums) {
  const int n = GetParam();
  Rig rig(n);
  Collectives coll(*rig.am, rig.ptrs());
  std::vector<double> contrib;
  double expect = 0;
  for (int r = 0; r < n; ++r) {
    contrib.push_back(r + 1.0);
    expect += r + 1.0;
  }
  double got = -1;
  coll.reduce(contrib, [](double a, double b) { return a + b; },
              [&](double v) { got = v; });
  rig.engine.run();
  EXPECT_DOUBLE_EQ(got, expect);
}

TEST_P(CollectivesWidth, ReduceMax) {
  const int n = GetParam();
  Rig rig(n);
  Collectives coll(*rig.am, rig.ptrs());
  std::vector<double> contrib(n, 1.0);
  contrib[n / 2] = 42.0;
  double got = -1;
  coll.reduce(contrib,
              [](double a, double b) { return a > b ? a : b; },
              [&](double v) { got = v; });
  rig.engine.run();
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST_P(CollectivesWidth, BarrierCompletes) {
  Rig rig(GetParam());
  Collectives coll(*rig.am, rig.ptrs());
  bool done = false;
  coll.barrier([&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Widths, CollectivesWidth,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(CollectivesTest, NonZeroRootBroadcast) {
  Rig rig(7);
  Collectives coll(*rig.am, rig.ptrs());
  bool done = false;
  coll.broadcast(4, 512, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

TEST(CollectivesTest, BroadcastScalesLogarithmically) {
  // Doubling the communicator adds about one tree level, not double the
  // time (the whole point of the binomial tree).
  auto run = [](int n) {
    Rig rig(n);
    Collectives coll(*rig.am, rig.ptrs());
    sim::SimTime at = -1;
    coll.broadcast(0, 256, [&] { at = rig.engine.now(); });
    rig.engine.run();
    return at;
  };
  const auto t8 = run(8);
  const auto t16 = run(16);
  const auto t32 = run(32);
  EXPECT_LT(static_cast<double>(t16) / t8, 1.7);
  EXPECT_LT(static_cast<double>(t32) / t16, 1.7);
}

TEST(CollectivesTest, MeasuredBroadcastTracksLogPPrediction) {
  for (const int n : {4, 8, 16, 32}) {
    Rig rig(n);
    Collectives coll(*rig.am, rig.ptrs());
    sim::SimTime at = -1;
    coll.broadcast(0, 64, [&] { at = rig.engine.now(); });
    rig.engine.run();
    const double measured_us = sim::to_us(at);
    const double predicted_us = models::logp_broadcast_us(
        models::derive_loggp(proto::am_medusa(), net::fddi_medusa(), n));
    // Same tree, same constants.  The DES additionally pays ack/credit
    // processing and per-node stack queueing that LogP abstracts away, so
    // (as in the original LogP validations) agreement is within ~60 %,
    // and always on the pessimistic side.
    EXPECT_GE(measured_us, predicted_us * 0.9) << "width " << n;
    EXPECT_LE(measured_us, predicted_us * 1.6) << "width " << n;
  }
}

}  // namespace
}  // namespace now::glunix
