// Tests for xFS: the log store, coherence, cooperative reads, write-behind
// flushing, the cleaner, and failure recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "raid/raid.hpp"
#include "xfs/log.hpp"
#include "xfs/central_server.hpp"
#include "xfs/tape.hpp"
#include "xfs/xfs.hpp"

namespace now::xfs {
namespace {

using namespace now::sim::literals;

// A cluster where nodes 0..n-1 are xFS clients/managers and the same nodes'
// disks form the RAID-5 storage array.
struct Rig {
  explicit Rig(int n, XfsParams xp = {}) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::atm_155mbps());
    mux = std::make_unique<proto::NicMux>(*network);
    am = std::make_unique<proto::AmLayer>(*mux, proto::AmParams{});
    rpc = std::make_unique<proto::RpcLayer>(*am);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), os::NodeParams{}));
      mux->attach_node(*nodes.back());
      rpc->bind(*nodes.back());
      raid::install_storage_service(*rpc, *nodes.back());
    }
    raid::RaidParams rp;
    rp.level = raid::Level::kRaid5;
    rp.stripe_unit = xp.block_bytes;
    std::vector<os::Node*> members;
    for (auto& nd : nodes) members.push_back(nd.get());
    storage = std::make_unique<raid::SoftwareRaid>(*rpc, members, rp);
    log = std::make_unique<LogStore>(*storage, xp.segment_blocks,
                                     xp.block_bytes);
    fs = std::make_unique<Xfs>(*rpc, *log, members, xp);
    fs->start();
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::unique_ptr<proto::RpcLayer> rpc;
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::unique_ptr<raid::SoftwareRaid> storage;
  std::unique_ptr<LogStore> log;
  std::unique_ptr<Xfs> fs;
};

XfsParams small_params() {
  XfsParams p;
  p.client_cache_blocks = 8;
  p.segment_blocks = 4;
  return p;
}

TEST(LogStoreTest, AppendAndReadBack) {
  Rig rig(4, small_params());
  bool wrote = false;
  rig.log->append_segment(0, {1, 2, 3}, [&] { wrote = true; });
  rig.engine.run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(rig.log->in_log(2));
  EXPECT_FALSE(rig.log->in_log(9));
  bool read = false;
  rig.log->read_block(1, 2, [&] { read = true; });
  rig.engine.run();
  EXPECT_TRUE(read);
  EXPECT_EQ(rig.log->stats().blocks_read, 1u);
}

TEST(LogStoreTest, RewriteKillsOldCopy) {
  Rig rig(4, small_params());
  rig.log->append_segment(0, {1, 2, 3, 4}, [] {});
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.log->utilization(0), 1.0);
  rig.log->append_segment(0, {2, 3}, [] {});
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.log->utilization(0), 0.5);  // 1 and 4 remain live
}

TEST(LogStoreTest, FullyDeadSegmentIsFreed) {
  Rig rig(4, small_params());
  rig.log->append_segment(0, {1, 2}, [] {});
  rig.engine.run();
  rig.log->append_segment(0, {1, 2}, [] {});
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.log->utilization(0), 0.0);  // superseded entirely
}

TEST(LogStoreTest, CleanerCompactsColdSegments) {
  Rig rig(4, small_params());
  // Two half-dead segments.
  rig.log->append_segment(0, {1, 2, 3, 4}, [] {});
  rig.engine.run();
  rig.log->append_segment(0, {5, 6, 7, 8}, [] {});
  rig.engine.run();
  rig.log->append_segment(0, {2, 3, 6, 7}, [] {});  // kills half of each
  rig.engine.run();
  std::uint32_t cleaned = 0;
  rig.log->clean(0, 0.5, [&](std::uint32_t n) { cleaned = n; });
  rig.engine.run();
  EXPECT_EQ(cleaned, 2u);
  // Survivors 1,4,5,8 still readable.
  for (const BlockId b : {1, 4, 5, 8}) {
    EXPECT_TRUE(rig.log->in_log(b)) << b;
  }
  EXPECT_GT(rig.log->stats().live_blocks_copied, 0u);
}

TEST(TapeTest, ArchivedSegmentReadsPayTheRobot) {
  Rig rig(4, small_params());
  TapeArchive tape(rig.engine);
  rig.log->set_tape(&tape);
  rig.log->append_segment(0, {1, 2, 3, 4}, [] {});
  rig.engine.run();
  bool archived = false;
  rig.log->archive_segment(0, 0, [&] { archived = true; });
  rig.engine.run();
  EXPECT_TRUE(archived);
  EXPECT_TRUE(rig.log->on_tape(2));
  EXPECT_EQ(tape.stats().mounts, 1u);

  // Let the drive dismount before the cold read.
  rig.engine.run_until(rig.engine.now() + 10 * sim::kMinute);
  const sim::SimTime t0 = rig.engine.now();
  sim::SimTime read_at = -1;
  rig.log->read_block(1, 2, [&] { read_at = rig.engine.now(); });
  rig.engine.run();
  // A fresh mount: tens of seconds, not milliseconds.
  EXPECT_GT(sim::to_sec(read_at - t0), 10.0);
  EXPECT_EQ(rig.log->stats().tape_reads, 1u);
}

TEST(TapeTest, MountedDriveServesBatchedReadsCheaply) {
  Rig rig(4, small_params());
  TapeArchive tape(rig.engine);
  rig.log->set_tape(&tape);
  rig.log->append_segment(0, {1, 2, 3, 4}, [] {});
  rig.engine.run();
  rig.log->archive_segment(0, 0, [] {});
  rig.engine.run();
  rig.engine.run_until(rig.engine.now() + 10 * sim::kMinute);  // dismount
  // First read mounts; the next three ride the mounted drive.
  int done = 0;
  for (const BlockId b : {1, 2, 3, 4}) {
    rig.log->read_block(1, b, [&] { ++done; });
  }
  rig.engine.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(tape.stats().mounts, 2u);  // one for archive, one for reads
}

TEST(TapeTest, RewriteBringsBlockBackOffTape) {
  Rig rig(4, small_params());
  TapeArchive tape(rig.engine);
  rig.log->set_tape(&tape);
  rig.log->append_segment(0, {1, 2, 3, 4}, [] {});
  rig.engine.run();
  rig.log->archive_segment(0, 0, [] {});
  rig.engine.run();
  // A fresh append of block 2 supersedes the tape copy.
  rig.log->append_segment(0, {2}, [] {});
  rig.engine.run();
  EXPECT_FALSE(rig.log->on_tape(2));
  EXPECT_TRUE(rig.log->on_tape(1));
}

TEST(CentralServerTest, ReadsEscalateLocalServerDisk) {
  Rig rig(4, small_params());
  std::vector<os::Node*> clients{rig.nodes[1].get(), rig.nodes[2].get(),
                                 rig.nodes[3].get()};
  CentralFsParams p;
  p.client_cache_blocks = 4;
  p.server_cache_blocks = 8;
  CentralServerFs fs(*rig.rpc, *rig.nodes[0], clients, p);
  fs.start();
  int ok = 0;
  fs.write(1, 100, [&](bool s) { ok += s; });
  rig.engine.run();
  // Client 1 hits locally; client 2 hits server memory.
  fs.read(1, 100, [&](bool s) { ok += s; });
  fs.read(2, 100, [&](bool s) { ok += s; });
  rig.engine.run();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(fs.stats().local_hits, 1u);
  EXPECT_EQ(fs.stats().server_mem_hits, 1u);
  // Push block 100 out of the tiny server cache; the next miss hits disk.
  for (xfs::BlockId b = 200; b < 210; ++b) {
    fs.write(3, b, [](bool) {});
    rig.engine.run();
  }
  fs.read(2, 100, [](bool) {});  // client 2 evicted it? cache 4: maybe
  rig.engine.run();
  fs.read(3, 100, [](bool) {});
  rig.engine.run();
  EXPECT_GE(fs.stats().server_disk_reads, 1u);
}

TEST(CentralServerTest, ServerDeathTakesTheBuildingDown) {
  Rig rig(4, small_params());
  std::vector<os::Node*> clients{rig.nodes[1].get(), rig.nodes[2].get(),
                                 rig.nodes[3].get()};
  CentralServerFs fs(*rig.rpc, *rig.nodes[0], clients, CentralFsParams{});
  fs.start();
  fs.write(1, 5, [](bool) {});
  rig.engine.run();
  rig.nodes[0]->crash();  // the single point of failure does its thing
  int failures = 0;
  fs.read(2, 5, [&](bool s) { failures += !s; });
  fs.write(3, 6, [&](bool s) { failures += !s; });
  rig.engine.run();
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(fs.stats().failed_ops, 2u);
}

TEST(XfsTest, FirstReadZeroFillsThenHitsLocally) {
  Rig rig(4, small_params());
  int done = 0;
  rig.fs->read(0, 100, [&] { ++done; });
  rig.engine.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(rig.fs->stats().zero_fills, 1u);
  rig.fs->read(0, 100, [&] { ++done; });
  rig.engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(rig.fs->stats().local_hits, 1u);
}

TEST(XfsTest, CooperativeReadComesFromPeerMemory) {
  Rig rig(4, small_params());
  rig.fs->write(1, 100, [] {});
  rig.engine.run();
  const auto disk_reads_before = rig.log->stats().blocks_read;
  bool done = false;
  rig.fs->read(2, 100, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.fs->stats().peer_fetches, 1u);
  EXPECT_EQ(rig.log->stats().blocks_read, disk_reads_before);  // no disk
}

TEST(XfsTest, WriteInvalidatesOtherReaders) {
  Rig rig(4, small_params());
  rig.fs->write(1, 100, [] {});
  rig.engine.run();
  rig.fs->read(2, 100, [] {});
  rig.engine.run();
  EXPECT_TRUE(rig.fs->is_cached(2, 100));
  // Node 3 takes write ownership: node 1 (old owner) and node 2 (reader)
  // must lose their copies.
  rig.fs->write(3, 100, [] {});
  rig.engine.run();
  EXPECT_FALSE(rig.fs->is_cached(1, 100));
  EXPECT_FALSE(rig.fs->is_cached(2, 100));
  EXPECT_TRUE(rig.fs->is_cached(3, 100));
  EXPECT_GE(rig.fs->stats().invalidations, 1u);
  EXPECT_GE(rig.fs->stats().ownership_transfers, 1u);
}

TEST(XfsTest, RepeatedWritesByOwnerAreLocal) {
  Rig rig(4, small_params());
  rig.fs->write(1, 100, [] {});
  rig.engine.run();
  const auto calls_before = rig.rpc->calls_sent();
  int done = 0;
  rig.fs->write(1, 100, [&] { ++done; });
  rig.engine.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(rig.rpc->calls_sent(), calls_before);  // pure cache write
}

TEST(XfsTest, EvictionStagesDirtyBlocksAndFlushesSegments) {
  Rig rig(4, small_params());  // cache 8, segment 4
  // Dirty 13 distinct blocks on node 0: evictions stage, staging flushes.
  int done = 0;
  for (BlockId b = 0; b < 13; ++b) {
    rig.fs->write(0, 1000 + b, [&] { ++done; });
    rig.engine.run();
  }
  EXPECT_EQ(done, 13);
  rig.engine.run();
  EXPECT_GE(rig.fs->stats().segments_flushed, 1u);
  EXPECT_GT(rig.log->stats().segments_written, 0u);
}

TEST(XfsTest, SyncDrainsAllDirtyState) {
  Rig rig(4, small_params());
  for (BlockId b = 0; b < 13; ++b) {
    rig.fs->write(0, 1000 + b, [] {});
    rig.engine.run();
  }
  bool synced = false;
  rig.fs->sync(0, [&] { synced = true; });
  rig.engine.run();
  EXPECT_TRUE(synced);
  // After sync every staged block is on the array; drop caches and read
  // one back: it must come from the log.
  rig.fs->client_crashed(0);
  const auto log_reads_before = rig.fs->stats().log_reads;
  bool read_done = false;
  rig.fs->read(1, 1000, [&] { read_done = true; });
  rig.engine.run();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(rig.fs->stats().log_reads, log_reads_before + 1);
}

TEST(XfsTest, ReadAfterFlushComesFromLog) {
  Rig rig(4, small_params());
  rig.fs->write(0, 7, [] {});
  rig.engine.run();
  rig.fs->sync(0, [] {});
  rig.engine.run();
  // Another node reads: the owner still caches it though, so force the
  // cooperative path away by crashing the owner.
  rig.nodes[0]->crash();
  rig.fs->client_crashed(0);
  rig.storage->member_failed(0);  // membership layer notices the loss
  bool done = false;
  rig.fs->read(2, 7, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_GE(rig.fs->stats().log_reads, 1u);
}

TEST(XfsTest, UnflushedDirtyDataDiesWithItsOwner) {
  Rig rig(4, small_params());
  rig.fs->write(1, 55, [] {});
  rig.engine.run();
  rig.nodes[1]->crash();
  rig.fs->client_crashed(1);
  rig.storage->member_failed(1);
  EXPECT_GE(rig.fs->stats().lost_dirty_blocks, 1u);
  // The block was never logged: a new read zero-fills instead of hanging.
  bool done = false;
  rig.fs->read(2, 55, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

TEST(XfsTest, ManagerTakeoverRebuildsDirectoryAndServiceContinues) {
  Rig rig(4, small_params());
  // Find a block managed by node 1 and populate some state.
  BlockId b = 0;
  while (rig.fs->manager_of(b) != 1) ++b;
  rig.fs->write(2, b, [] {});
  rig.engine.run();

  rig.nodes[1]->crash();
  rig.fs->client_crashed(1);
  rig.storage->member_failed(1);
  bool recovered = false;
  rig.fs->manager_takeover(1, 3, [&] { recovered = true; });
  rig.engine.run();
  EXPECT_TRUE(recovered);
  EXPECT_EQ(rig.fs->manager_of(b), 3u);
  EXPECT_EQ(rig.fs->stats().manager_takeovers, 1u);

  // Ownership knowledge survived: a read from node 0 is served from the
  // owner (node 2)'s memory, not zero-filled.
  const auto zero_before = rig.fs->stats().zero_fills;
  bool done = false;
  rig.fs->read(0, b, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.fs->stats().zero_fills, zero_before);
  EXPECT_GE(rig.fs->stats().peer_fetches, 1u);
}

TEST(XfsTest, OpsDuringTakeoverRetryAndComplete) {
  Rig rig(4, small_params());
  BlockId b = 0;
  while (rig.fs->manager_of(b) != 1) ++b;
  rig.fs->write(2, b, [] {});
  rig.engine.run();
  rig.fs->sync(2, [] {});
  rig.engine.run();

  // Crash the manager, issue a read from node 0 *before* takeover begins,
  // then recover; the op must ride it out via timeout+retry.
  rig.nodes[1]->crash();
  rig.fs->client_crashed(1);
  rig.storage->member_failed(1);  // degraded reads serve its stripe units
  bool done = false;
  rig.fs->read(0, b, [&] { done = true; });
  rig.engine.schedule_in(300 * sim::kMillisecond, [&] {
    rig.fs->manager_takeover(1, 0, [] {});
  });
  rig.engine.run_until(30 * sim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_GT(rig.fs->stats().op_retries, 0u);
}

TEST(XfsTest, WritesAsSegmentsAreFullStripeOnTheRaid) {
  XfsParams xp = small_params();
  xp.segment_blocks = 3;  // matches 4-member RAID-5 (3 data + 1 parity)
  Rig rig(4, xp);
  for (BlockId b = 0; b < 11; ++b) {
    rig.fs->write(0, b, [] {});
    rig.engine.run();
  }
  rig.fs->sync(0, [] {});
  rig.engine.run();
  // Log appends land as full-stripe writes; only the final partial
  // segment of the sync may fall back to read-modify-write parity.
  EXPECT_GT(rig.storage->stats().full_stripe_writes, 0u);
  EXPECT_LE(rig.storage->stats().parity_updates, 2u);
}

}  // namespace
}  // namespace now::xfs
