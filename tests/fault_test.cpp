// now::fault — fault injection driving real subsystem reactions.
//
// Deterministic fault schedules with golden expectations: RAID degraded
// operation and rebuild, xFS manager takeover under a crash mid-write,
// GLUnix gang survival across a crash/restart pair, link flaps, and the
// determinism of a stochastic FaultPlan across two identical runs.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "fault/fault.hpp"

namespace now {
namespace {

TEST(Fault, RaidDegradedOpsAndRebuildGoldenValues) {
  ClusterConfig cfg;
  cfg.workstations = 5;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.stripe_group_size = 0;  // one RAID-5 across all five disks
  cfg.fault_policy.rebuild_bytes_per_member = 64 * 1024;
  // Node 2 holds data unit 1 of row 0 (parity rotates starting at node 0):
  // its disk dies at 1 s and is replaced at 5 s.
  cfg.fault_plan.disk_fail_at(1 * sim::kSecond, 2)
      .disk_replace_at(5 * sim::kSecond, 2);
  Cluster c(cfg);

  int done = 0;
  const std::uint32_t blk = 8192;  // stripe unit == xfs block size
  // Healthy small write: classic read-modify-write parity update.
  c.engine().schedule_at(0, [&] {
    c.storage_backend().write(0, 0, blk, [&] { ++done; });
  });
  // Degraded read of the failed member: reconstructed from survivors.
  c.engine().schedule_at(2 * sim::kSecond, [&] {
    c.storage_backend().read(0, blk, blk, [&] { ++done; });
  });
  // Degraded small write to the failed member: parity absorbs it.
  c.engine().schedule_at(3 * sim::kSecond, [&] {
    c.storage_backend().write(0, blk, blk, [&] { ++done; });
  });
  // After the rebuild: a normal read again.
  c.engine().schedule_at(30 * sim::kSecond, [&] {
    c.storage_backend().read(0, blk, blk, [&] { ++done; });
  });
  c.run_until(60 * sim::kSecond);

  EXPECT_EQ(done, 4);
  const raid::RaidStats rs = c.storage_stats();
  EXPECT_EQ(rs.reads, 2u);
  EXPECT_EQ(rs.writes, 2u);
  EXPECT_EQ(rs.degraded_reads, 1u);
  EXPECT_EQ(rs.parity_updates, 2u);

  const fault::FaultStats& fs = c.faults().stats();
  EXPECT_EQ(fs.disk_fails, 1u);
  EXPECT_EQ(fs.disk_replacements, 1u);
  EXPECT_EQ(fs.rebuilds_started, 1u);
  EXPECT_EQ(fs.rebuilds_completed, 1u);
  EXPECT_FALSE(c.storage_degraded());  // whole again
  EXPECT_TRUE(c.node(2).alive());      // the node never went down
}

TEST(Fault, XfsManagerTakeoverUnderCrashMidWrite) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.stripe_group_size = 0;
  Cluster c(cfg);

  // Block 3's manager is node 3 (identity hash ring at start).
  ASSERT_EQ(c.fs().manager_of(3), 3u);
  // The manager dies at 1 s; the write is issued 1 ms later, before the
  // failure detector (500 ms) has arranged the takeover.  The operation
  // spans the whole outage: first attempt times out against the dead
  // manager, retries ride out the takeover, the grant lands afterwards.
  int done = 0;
  c.engine().schedule_at(1 * sim::kSecond,
                         [&] { c.faults().crash_node(3); });
  c.engine().schedule_at(1 * sim::kSecond + 1 * sim::kMillisecond, [&] {
    c.fs().write(1, 3, [&] { ++done; });
  });
  c.run_until(30 * sim::kSecond);

  EXPECT_EQ(done, 1);
  EXPECT_EQ(c.fs().stats().manager_takeovers, 1u);
  EXPECT_GE(c.fs().stats().op_retries, 1u);
  EXPECT_EQ(c.fs().stats().failed_ops, 0u);  // retried, not failed
  EXPECT_EQ(c.faults().stats().manager_takeovers, 1u);
  EXPECT_TRUE(c.faults().node_down(3));
  // Duty moved off the dead node.
  EXPECT_FALSE(c.fs().is_manager(3));
  EXPECT_NE(c.fs().manager_of(3), 3u);
}

TEST(Fault, GlunixGangSurvivesCrashRestartPair) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.fault_plan.crash_at(20 * sim::kSecond, 2)
      .restart_at(50 * sim::kSecond, 2);
  Cluster c(cfg);

  bool completed = false;
  // Three ranks land on nodes 1,2,3 (lowest idle non-master machines).
  c.glunix().run_parallel(3, 30 * sim::kSecond, 8ull << 20,
                          [&] { completed = true; });
  c.run_until(400 * sim::kSecond);

  EXPECT_TRUE(completed);
  EXPECT_EQ(c.glunix().stats().gangs_completed, 1u);
  EXPECT_GE(c.glunix().stats().crash_restarts, 1u);
  const fault::FaultStats& fs = c.faults().stats();
  EXPECT_EQ(fs.node_crashes, 1u);
  EXPECT_EQ(fs.node_restarts, 1u);
  EXPECT_TRUE(c.node(2).alive());
  // Heartbeats re-admitted the rebooted machine.
  EXPECT_TRUE(c.glunix().node_believed_up(2));
}

TEST(Fault, LinkFlapDropsPacketsAndUpperLayersRecover) {
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.stripe_group_size = 0;
  cfg.fault_plan.link_down_at(1 * sim::kSecond, 2)
      .link_up_at(3 * sim::kSecond, 2);
  Cluster c(cfg);

  int done = 0;
  // Issued while node 2's cable is pulled: every RPC attempt vanishes on
  // the wire until 3 s, then the xFS retry ladder pushes it through.
  c.engine().schedule_at(1 * sim::kSecond + 100 * sim::kMillisecond, [&] {
    c.fs().write(2, 1, [&] { ++done; });
  });
  c.run_until(30 * sim::kSecond);

  EXPECT_EQ(done, 1);
  EXPECT_GT(c.network().stats().link_drops, 0u);
  EXPECT_GE(c.fs().stats().op_retries, 1u);
  EXPECT_EQ(c.faults().stats().link_downs, 1u);
  EXPECT_EQ(c.faults().stats().link_ups, 1u);
  EXPECT_TRUE(c.network().link_up(2));
}

// Everything a stochastic plan does is a pure function of the cluster
// seed: two identical runs produce identical failure schedules and
// identical subsystem outcomes.
TEST(Fault, StochasticPlanIsDeterministicAcrossRuns) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.workstations = 10;
    cfg.with_xfs = true;
    cfg.stripe_group_size = 0;
    cfg.with_netram_registry = true;
    cfg.seed = 42;
    cfg.fault_policy.rebuild_bytes_per_member = 64 * 1024;
    cfg.fault_plan.with_node_churn(20 * sim::kSecond, 5 * sim::kSecond,
                                   {3, 4, 5})
        .with_link_flaps(15 * sim::kSecond, 1 * sim::kSecond, {6, 7})
        .with_owner_returns(10 * sim::kSecond, {8, 9})
        .until(60 * sim::kSecond);
    Cluster c(cfg);
    c.memory_registry().add_donor(c.node(8));
    c.memory_registry().add_donor(c.node(9));

    // A steady trickle of file traffic so failures have work to disturb.
    int completed = 0;
    for (int i = 0; i < 20; ++i) {
      c.engine().schedule_at(i * 2 * sim::kSecond, [&c, &completed, i] {
        c.fs().write(1, static_cast<xfs::BlockId>(i), [&completed] {
          ++completed;
        });
      });
    }
    c.run_until(60 * sim::kSecond);

    const fault::FaultStats& f = c.faults().stats();
    const xfs::XfsStats& x = c.fs().stats();
    const net::NetworkStats& n = c.network().stats();
    return std::tuple(f.node_crashes, f.node_restarts, f.link_downs,
                      f.link_ups, f.owner_returns, f.manager_takeovers,
                      f.rebuilds_started, f.rebuilds_completed,
                      f.donor_revocations, x.op_retries, x.failed_ops,
                      x.manager_takeovers, n.packets_sent,
                      n.packets_delivered, n.link_drops, completed);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  // The plan actually exercised something.
  EXPECT_GE(std::get<0>(a), 1u);  // node crashes
  EXPECT_GE(std::get<2>(a), 1u);  // link downs
  EXPECT_GE(std::get<4>(a), 1u);  // owner returns
}

// The schedule materialization itself (no cluster, no workload): same
// seed same draws, different seed different draws.
TEST(Fault, PlanMaterializationFollowsSeed) {
  auto schedule_for = [](std::uint64_t seed) {
    sim::Engine eng;
    std::vector<std::unique_ptr<os::Node>> nodes;
    std::vector<os::Node*> ptrs;
    for (net::NodeId i = 0; i < 4; ++i) {
      nodes.push_back(std::make_unique<os::Node>(eng, i, os::NodeParams{}));
      ptrs.push_back(nodes.back().get());
    }
    fault::FaultTargets t;
    t.engine = &eng;
    t.nodes = ptrs;
    fault::FaultInjector inj(std::move(t), seed);
    fault::FaultPlan plan;
    plan.with_node_churn(10 * sim::kSecond, 2 * sim::kSecond)
        .until(120 * sim::kSecond);
    inj.apply(plan);
    eng.run_until(120 * sim::kSecond);
    return std::pair(inj.stats().node_crashes, inj.stats().node_restarts);
  };
  EXPECT_EQ(schedule_for(7), schedule_for(7));
  EXPECT_NE(schedule_for(7), schedule_for(8));
}

}  // namespace
}  // namespace now
