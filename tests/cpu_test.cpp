// Unit tests for the workstation CPU scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace now::os {
namespace {

using namespace now::sim::literals;
using sim::Duration;
using sim::Engine;

CpuParams fast_params() {
  CpuParams p;
  p.quantum = 100_ms;
  p.context_switch = 0;  // most tests want exact arithmetic
  p.mflops = 100.0;
  return p;
}

TEST(Cpu, SingleProcessRunsToCompletion) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 250_ms, [&] {
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.run();
  EXPECT_EQ(done_at, 250_ms);
  EXPECT_FALSE(cpu.exists(pid));
}

TEST(Cpu, TwoEqualProcessesShareTheCpu) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime a_done = -1, b_done = -1;
  const ProcessId a = cpu.spawn("a", SchedClass::kBatch, [&] {
    cpu.compute(a, 300_ms, [&] {
      a_done = eng.now();
      cpu.exit(a);
    });
  });
  const ProcessId b = cpu.spawn("b", SchedClass::kBatch, [&] {
    cpu.compute(b, 300_ms, [&] {
      b_done = eng.now();
      cpu.exit(b);
    });
  });
  eng.run();
  // Round-robin with 100 ms quanta: both finish near 600 ms, a one quantum
  // before b.
  EXPECT_EQ(a_done, 500_ms);
  EXPECT_EQ(b_done, 600_ms);
}

TEST(Cpu, WallClockDegradesLinearlyWithLoad) {
  for (int n : {1, 2, 4}) {
    Engine eng;
    Cpu cpu(eng, fast_params());
    int done = 0;
    std::vector<ProcessId> pids(n);
    for (int i = 0; i < n; ++i) {
      pids[i] = cpu.spawn("q", SchedClass::kBatch, [&cpu, &done, &pids, i] {
        cpu.compute(pids[i], 200_ms, [&cpu, &done, &pids, i] {
          ++done;
          cpu.exit(pids[i]);
        });
      });
    }
    eng.run();
    EXPECT_EQ(done, n);
    EXPECT_EQ(eng.now(), n * 200_ms);
  }
}

TEST(Cpu, BlockAndWakeResumes) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime resumed_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.block(pid, [&] {
      resumed_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.schedule_at(42_ms, [&] { cpu.wake(pid); });
  eng.run();
  EXPECT_EQ(resumed_at, 42_ms);
}

TEST(Cpu, WakeOnRunnableProcessIsNoOp) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  int runs = 0;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    ++runs;
    cpu.compute(pid, 10_ms, [&] { cpu.exit(pid); });
  });
  cpu.wake(pid);  // already ready
  eng.run();
  EXPECT_EQ(runs, 1);
}

TEST(Cpu, WokenProcessWaitsForRunningProcessQuantum) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime handled_at = -1;
  const ProcessId rx = cpu.spawn("rx", SchedClass::kBatch, [&] {
    cpu.block(rx, [&] {
      handled_at = eng.now();
      cpu.exit(rx);
    });
  });
  eng.run();  // rx dispatches and blocks awaiting its "message"
  const ProcessId bg = cpu.spawn("bg", SchedClass::kBatch, [&] {
    cpu.compute(bg, 1'000_ms, [&] { cpu.exit(bg); });
  });
  // A "message" arrives for rx at t=10ms while bg is mid-quantum.  With
  // batch-class round-robin, rx runs only at the quantum boundary -- the
  // local-scheduling delay at the heart of Figure 4.
  eng.schedule_at(10_ms, [&] { cpu.wake(rx); });
  eng.run();
  EXPECT_EQ(handled_at, 100_ms);
}

TEST(Cpu, InteractiveWakePreemptsBatchImmediately) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime handled_at = -1;
  const ProcessId bg = cpu.spawn("bg", SchedClass::kBatch, [&] {
    cpu.compute(bg, 1'000_ms, [&] { cpu.exit(bg); });
  });
  const ProcessId ui = cpu.spawn("ui", SchedClass::kInteractive, [&] {
    cpu.block(ui, [&] {
      handled_at = eng.now();
      cpu.exit(ui);
    });
  });
  eng.schedule_at(10_ms, [&] { cpu.wake(ui); });
  eng.run();
  EXPECT_EQ(handled_at, 10_ms);
  // bg keeps the work it retired before preemption and completes on time.
  EXPECT_EQ(eng.now(), 1'000_ms);
}

TEST(Cpu, StealDelaysRunningProcess) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 50_ms, [&] {
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.schedule_at(10_ms, [&] { cpu.steal(5_ms); });
  eng.run();
  EXPECT_EQ(done_at, 55_ms);
}

TEST(Cpu, StealWhileIdleOnlyAccountsBusyTime) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  eng.schedule_at(10_ms, [&] { cpu.steal(3_ms); });
  eng.run();
  EXPECT_EQ(cpu.busy_time(), 3_ms);
}

TEST(Cpu, UtilizationReflectsBusyFraction) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 100_ms, [&] { cpu.exit(pid); });
  });
  eng.run();
  eng.run_until(400_ms);  // 300 ms idle tail
  EXPECT_NEAR(cpu.utilization(), 0.25, 0.01);
}

TEST(Cpu, KillReadyProcessNeverRuns) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  bool ran = false;
  const ProcessId a = cpu.spawn("a", SchedClass::kBatch, [&] {
    cpu.compute(a, 100_ms, [&] { cpu.exit(a); });
  });
  const ProcessId b = cpu.spawn("b", SchedClass::kBatch, [&ran] { ran = true; });
  cpu.kill(b);
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(cpu.exists(b));
}

TEST(Cpu, KillRunningProcessFreesCpu) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  bool a_finished = false;
  sim::SimTime b_done = -1;
  const ProcessId a = cpu.spawn("a", SchedClass::kBatch, [&] {
    cpu.compute(a, 1'000_ms, [&] {
      a_finished = true;
      cpu.exit(a);
    });
  });
  const ProcessId b = cpu.spawn("b", SchedClass::kBatch, [&] {
    cpu.compute(b, 100_ms, [&] {
      b_done = eng.now();
      cpu.exit(b);
    });
  });
  eng.schedule_at(50_ms, [&] { cpu.kill(a); });
  eng.run();
  EXPECT_FALSE(a_finished);
  // b ran 50 ms behind a's partial slice, then finished its 100 ms alone.
  EXPECT_EQ(b_done, 150_ms);
}

TEST(Cpu, ResetKillsEverything) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  int completions = 0;
  std::vector<ProcessId> pids(3);
  for (int i = 0; i < 3; ++i) {
    pids[i] = cpu.spawn("p", SchedClass::kBatch, [&cpu, &completions, &pids, i] {
      cpu.compute(pids[i], 500_ms, [&cpu, &completions, &pids, i] {
        ++completions;
        cpu.exit(pids[i]);
      });
    });
  }
  eng.schedule_at(100_ms, [&] { cpu.reset(); });
  eng.run();
  EXPECT_EQ(completions, 0);
  EXPECT_TRUE(cpu.idle());
}

TEST(Cpu, ContextSwitchCostAccrues) {
  Engine eng;
  CpuParams p = fast_params();
  p.context_switch = 1_ms;
  Cpu cpu(eng, p);
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 100_ms, [&] {
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.run();
  EXPECT_EQ(done_at, 101_ms);  // one dispatch, one switch
}

TEST(Cpu, ComputeFlopsUsesMflopsRating) {
  Engine eng;
  CpuParams p = fast_params();
  p.mflops = 50.0;
  Cpu cpu(eng, p);
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute_flops(pid, 5e6, [&] {  // 5 MFLOP at 50 MFLOPS = 100 ms
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.run();
  EXPECT_EQ(done_at, 100_ms);
}

TEST(Cpu, SuspendStopsRunningProcess) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 100_ms, [&] {
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.schedule_at(30_ms, [&] { cpu.suspend(pid); });
  eng.schedule_at(500_ms, [&] { cpu.resume(pid); });
  eng.run();
  // 30 ms retired before the stop, 70 ms after the resume.
  EXPECT_EQ(done_at, 570_ms);
  EXPECT_TRUE(cpu.idle());
}

TEST(Cpu, SuspendedReadyProcessNeverDispatches) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  bool ran = false;
  const ProcessId a = cpu.spawn("a", SchedClass::kBatch, [&] {
    cpu.compute(a, 100_ms, [&] { cpu.exit(a); });
  });
  const ProcessId b = cpu.spawn("b", SchedClass::kBatch, [&ran] { ran = true; });
  cpu.suspend(b);
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(cpu.suspended(b));
  cpu.resume(b);
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Cpu, WakeWhileSuspendedIsRememberedUntilResume) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime resumed_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.block(pid, [&] {
      resumed_at = eng.now();
      cpu.exit(pid);
    });
  });
  eng.run();                                        // now blocked
  cpu.suspend(pid);
  eng.schedule_at(10_ms, [&] { cpu.wake(pid); });   // message arrives
  eng.schedule_at(200_ms, [&] { cpu.resume(pid); });
  eng.run();
  EXPECT_EQ(resumed_at, 200_ms);  // handled only once coscheduled again
}

TEST(Cpu, SuspendResumeRoundTripPreservesWork) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  sim::SimTime done_at = -1;
  const ProcessId pid = cpu.spawn("p", SchedClass::kBatch, [&] {
    cpu.compute(pid, 300_ms, [&] {
      done_at = eng.now();
      cpu.exit(pid);
    });
  });
  // Stop/resume repeatedly; total on-CPU time must still be 300 ms.
  for (int i = 1; i <= 4; ++i) {
    eng.schedule_at(i * 100_ms, [&] { cpu.suspend(pid); });
    eng.schedule_at(i * 100_ms + 50_ms, [&] { cpu.resume(pid); });
  }
  eng.run();
  // Four 50 ms suspensions land before completion, delaying it to 500 ms.
  EXPECT_EQ(done_at, 300_ms + 4 * 50_ms);
}

TEST(Cpu, DispatchObserverFiresOnDispatch) {
  Engine eng;
  Cpu cpu(eng, fast_params());
  std::vector<ProcessId> dispatched;
  cpu.add_dispatch_observer([&](ProcessId pid) { dispatched.push_back(pid); });
  const ProcessId a = cpu.spawn("a", SchedClass::kBatch, [&] {
    cpu.compute(a, 150_ms, [&] { cpu.exit(a); });
  });
  const ProcessId b = cpu.spawn("b", SchedClass::kBatch, [&] {
    cpu.compute(b, 150_ms, [&] { cpu.exit(b); });
  });
  eng.run();
  // a, b each dispatched at least twice (quantum rotation).
  EXPECT_GE(dispatched.size(), 4u);
  EXPECT_EQ(dispatched[0], a);
  EXPECT_EQ(dispatched[1], b);
}

}  // namespace
}  // namespace now::os
