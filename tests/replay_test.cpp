// Tests for now::replay — streaming cursors, format adapters, replay
// drivers, the profiler, and the ServeWorkload replay arrival source.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "replay/cursor.hpp"
#include "replay/driver.hpp"
#include "replay/profile.hpp"
#include "serve/workload.hpp"
#include "sim/engine.hpp"
#include "trace/fs_trace.hpp"
#include "trace/trace_io.hpp"
#include "xfs/central_server.hpp"

namespace now::replay {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// LineCursor

TEST(LineCursor, YieldsContentLinesWithNumbers) {
  std::istringstream in("# comment\n\nalpha\r\n  \nbeta\ngamma");
  LineCursor lc(in);
  auto l = lc.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "alpha");  // '\r' stripped
  EXPECT_EQ(lc.line_number(), 3u);
  l = lc.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "beta");
  EXPECT_EQ(lc.line_number(), 5u);
  l = lc.next();
  ASSERT_TRUE(l);
  EXPECT_EQ(*l, "gamma");  // final line without trailing newline
  EXPECT_EQ(lc.line_number(), 6u);
  EXPECT_FALSE(lc.next());
}

TEST(LineCursor, LineLongerThanWindowIsAHardError) {
  std::string text = "short\n";
  text.append(300, 'x');
  text += '\n';
  std::istringstream in(text);
  LineCursor lc(in, 64);
  ASSERT_TRUE(lc.next());
  try {
    lc.next();
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("window"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

// The bounded-memory acceptance criterion: a trace far larger than the
// window replays completely while the reader's footprint stays exactly
// the window it was constructed with.
TEST(LineCursor, MemoryStaysAtWindowForTracesMuchLargerThanIt) {
  constexpr std::size_t kWindow = 4'096;
  std::ostringstream big;
  const std::uint64_t kRecords = 200'000;  // ~4 MB of text, 1000x window
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    big << i * 10 << " " << i % 42 << " " << i % 7'000 << " "
        << (i % 5 == 0 ? 'w' : 'r') << "\n";
  }
  std::istringstream in(big.str());
  ASSERT_GT(in.str().size(), 500 * kWindow);
  CursorOptions opt;
  opt.window_bytes = kWindow;
  FsTraceCursor cur(in, opt);
  std::uint64_t n = 0;
  while (auto a = cur.next()) {
    ++n;
    EXPECT_EQ(cur.window_bytes(), kWindow);  // never grows
  }
  EXPECT_EQ(n, kRecords);
}

// ---------------------------------------------------------------------------
// FsTraceCursor and the trace_io wrappers

TEST(FsTraceCursor, MatchesTheMaterializingReader) {
  trace::FsWorkloadParams p;
  p.clients = 4;
  p.accesses_per_client = 500;
  const auto original = trace::generate_fs_trace(p);
  std::stringstream buf;
  trace::write_fs_trace(buf, original);
  const std::string text = buf.str();

  std::istringstream a(text);
  const auto wrapped = trace::read_fs_trace(a);
  std::istringstream b(text);
  FsTraceCursor cur(b);
  std::size_t i = 0;
  while (auto rec = cur.next()) {
    ASSERT_LT(i, wrapped.size());
    EXPECT_EQ(rec->at, wrapped[i].at);
    EXPECT_EQ(rec->client, wrapped[i].client);
    EXPECT_EQ(rec->block, wrapped[i].block);
    EXPECT_EQ(rec->is_write, wrapped[i].is_write);
    ++i;
  }
  EXPECT_EQ(i, wrapped.size());
  EXPECT_EQ(i, original.size());
}

// ---------------------------------------------------------------------------
// NFS adapter

const char* kNfsSample =
    "# ts client op fh offset bytes\n"
    "1.000000 ws01 getattr fhAA 0 0\n"
    "1.000100 ws02 read fhAA 16384 8192\n"
    "1.000200 ws01 write fhBB 0 8192\n"
    "1.000300 ws03 lookup fhCC 0 0\n"
    "1.000400 ws02 create fhDD 0 0\n"
    "1.000500 ws01 read fhAA 9999999999 8192\n";

TEST(NfsTraceCursor, ParsesAndAssignsDenseIds) {
  std::istringstream in(kNfsSample);
  NfsTraceCursor cur(in);
  std::vector<NfsRecord> recs;
  while (auto r = cur.next()) recs.push_back(*r);
  ASSERT_EQ(recs.size(), 6u);
  // First-seen order: ws01 -> 0, ws02 -> 1, ws03 -> 2.
  EXPECT_EQ(recs[0].client, 0u);
  EXPECT_EQ(recs[1].client, 1u);
  EXPECT_EQ(recs[3].client, 2u);
  EXPECT_EQ(recs[5].client, 0u);
  // fhAA -> 0, fhBB -> 1, fhCC -> 2, fhDD -> 3.
  EXPECT_EQ(recs[0].fh, 0u);
  EXPECT_EQ(recs[2].fh, 1u);
  EXPECT_EQ(recs[4].fh, 3u);
  EXPECT_EQ(cur.distinct_clients(), 3u);
  EXPECT_EQ(cur.distinct_fhs(), 4u);
  EXPECT_EQ(recs[0].op, NfsOp::kGetattr);
  EXPECT_EQ(recs[1].op, NfsOp::kRead);
  EXPECT_EQ(recs[1].bytes, 8'192u);
  EXPECT_EQ(recs[1].offset, 16'384u);
}

TEST(NfsFsCursor, AppliesTheOpTable) {
  std::istringstream in(kNfsSample);
  NfsMapParams map;  // block_bytes 8192, blocks_per_file 256
  NfsFsCursor cur(in, {}, map);
  std::vector<trace::FsAccess> recs;
  while (auto a = cur.next()) recs.push_back(*a);
  ASSERT_EQ(recs.size(), 6u);
  // getattr fhAA (fh 0): metadata read of the inode block.
  EXPECT_FALSE(recs[0].is_write);
  EXPECT_EQ(recs[0].block, 0u);
  // read fhAA offset 16384: data block 0*256 + 16384/8192 = 2.
  EXPECT_FALSE(recs[1].is_write);
  EXPECT_EQ(recs[1].block, 2u);
  // write fhBB (fh 1) offset 0: data block 1*256 + 0.
  EXPECT_TRUE(recs[2].is_write);
  EXPECT_EQ(recs[2].block, 256u);
  // lookup fhCC (fh 2): metadata read of inode block 2*256.
  EXPECT_FALSE(recs[3].is_write);
  EXPECT_EQ(recs[3].block, 512u);
  // create fhDD (fh 3): metadata *write* of inode block 3*256.
  EXPECT_TRUE(recs[4].is_write);
  EXPECT_EQ(recs[4].block, 768u);
  // read past the per-file span clamps to the last block (0*256 + 255).
  EXPECT_EQ(recs[5].block, 255u);
}

TEST(NfsTraceCursor, UnknownOpCitesTheLine) {
  std::istringstream in("1.0 ws01 getattr fhAA 0 0\n1.1 ws01 frobnicate fhAA 0 0\n");
  NfsTraceCursor cur(in);
  ASSERT_TRUE(cur.next());
  try {
    cur.next();
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown NFS op 'frobnicate'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(NfsTraceCursor, OutOfOrderTimestampsRejected) {
  std::istringstream in("2.0 ws01 read fhAA 0 8192\n1.0 ws01 read fhAA 0 8192\n");
  NfsTraceCursor cur(in);
  ASSERT_TRUE(cur.next());
  EXPECT_THROW(cur.next(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// File-level helpers

TEST(TraceFile, DetectsFormatAndOpens) {
  const std::string fs_path = temp_path("now_replay_detect_fs.trace");
  const std::string nfs_path = temp_path("now_replay_detect_nfs.trace");
  {
    std::ofstream f(fs_path);
    f << "# native\n100 0 7 r\n200 1 9 w\n";
    std::ofstream n(nfs_path);
    n << kNfsSample;
  }
  EXPECT_EQ(detect_format(fs_path), TraceFormat::kFs);
  EXPECT_EQ(detect_format(nfs_path), TraceFormat::kNfs);

  auto fs_cur = open_trace(fs_path);
  auto a = fs_cur->next();
  ASSERT_TRUE(a);
  EXPECT_EQ(a->block, 7u);
  auto nfs_cur = open_trace(nfs_path);
  std::uint64_t n = 0;
  while (nfs_cur->next()) ++n;
  EXPECT_EQ(n, 6u);

  const std::string bad = temp_path("now_replay_detect_bad.trace");
  {
    std::ofstream f(bad);
    f << "neither fish nor fowl\n";
  }
  EXPECT_THROW(detect_format(bad), std::runtime_error);
  EXPECT_THROW(detect_format(temp_path("now_replay_missing.trace")),
               std::runtime_error);
  std::remove(fs_path.c_str());
  std::remove(nfs_path.c_str());
  std::remove(bad.c_str());
}

TEST(TraceFile, StrideCursorsPartitionTheTrace) {
  const std::string path = temp_path("now_replay_stride.trace");
  {
    std::ofstream f(path);
    for (int i = 0; i < 30; ++i) {
      f << i * 100 << " " << i % 5 << " " << i << " r\n";
    }
  }
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    ClientStrideCursor cur(open_trace(path), 3, r);
    while (auto a = cur.next()) {
      EXPECT_EQ(a->client, r);  // rewritten to the residue
      ++total;
    }
  }
  EXPECT_EQ(total, 30u);  // the three views cover the trace exactly
  std::remove(path.c_str());
}

TEST(TraceFile, SummarizeCountsInOnePass) {
  const std::string path = temp_path("now_replay_summary.trace");
  {
    std::ofstream f(path);
    f << "100 0 1 r\n200 3 2 w\n300 1 3 r\n";
  }
  const TraceSummary s = summarize(path);
  EXPECT_EQ(s.format, TraceFormat::kFs);
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.clients, 4u);  // max id + 1
  EXPECT_EQ(s.first_at, sim::from_us(100));
  EXPECT_EQ(s.last_at, sim::from_us(300));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Replay drivers

TEST(OpenLoopReplay, HonorsRecordedScheduleAndTimeScale) {
  std::istringstream in("100 0 1 r\n300 0 2 r\n700 0 3 w\n");
  FsTraceCursor cur(in);
  sim::Engine eng;
  std::vector<sim::SimTime> at;
  OpenLoopReplay drv(eng, cur, 2.0, [&](const trace::FsAccess&,
                                        std::function<void()> done) {
    at.push_back(eng.now());
    eng.schedule_in(5 * sim::kMicrosecond, std::move(done));
  });
  drv.start();
  eng.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], sim::from_us(50));  // recorded / 2
  EXPECT_EQ(at[1], sim::from_us(150));
  EXPECT_EQ(at[2], sim::from_us(350));
  EXPECT_EQ(drv.stats().issued, 3u);
  EXPECT_EQ(drv.stats().completed, 3u);
  EXPECT_EQ(drv.stats().late, 0u);
}

TEST(ClosedLoopReplay, KeepsConcurrencyOutstanding) {
  std::ostringstream buf;
  for (int i = 0; i < 10; ++i) buf << i * 1'000 << " 0 " << i << " r\n";
  std::istringstream in(buf.str());
  FsTraceCursor cur(in);
  sim::Engine eng;
  std::uint64_t in_flight = 0, max_in_flight = 0;
  ClosedLoopReplay drv(eng, cur, 2, [&](const trace::FsAccess&,
                                        std::function<void()> done) {
    ++in_flight;
    max_in_flight = std::max(max_in_flight, in_flight);
    eng.schedule_in(10 * sim::kMicrosecond, [&in_flight, done] {
      --in_flight;
      done();
    });
  });
  drv.start();
  eng.run();
  EXPECT_EQ(drv.stats().issued, 10u);
  EXPECT_EQ(drv.stats().completed, 10u);
  EXPECT_EQ(max_in_flight, 2u);  // never more than the concurrency
  // Ten 10 us ops over two slots: 50 us of simulated time, not 100.
  EXPECT_EQ(eng.now(), sim::from_us(50));
}

// ---------------------------------------------------------------------------
// Profiler

TEST(Profiler, MeasuresMixGapsAndPopularity) {
  const std::string path = temp_path("now_replay_profile.trace");
  {
    // 1000 records, every 4th a write, gaps of 100 us, block popularity
    // concentrated on block 0 (50 % of accesses).
    std::ofstream f(path);
    for (int i = 0; i < 1'000; ++i) {
      f << i * 100 << " " << i % 8 << " " << (i % 2 ? 1 + i % 100 : 0)
        << " " << (i % 4 == 3 ? 'w' : 'r') << "\n";
    }
  }
  const TraceProfile p = profile_trace(path);
  EXPECT_EQ(p.format, TraceFormat::kFs);
  EXPECT_EQ(p.records, 1'000u);
  EXPECT_EQ(p.clients, 8u);
  EXPECT_EQ(p.writes, 250u);
  EXPECT_EQ(p.reads, 750u);
  // Odd rows touch the 50 even blocks 2..100; even rows all hit block 0.
  EXPECT_EQ(p.distinct_blocks, 51u);
  EXPECT_NEAR(p.mean_gap_us, 100.0, 1.0);
  EXPECT_NEAR(p.top1_share, 0.5, 0.01);
  EXPECT_GT(p.zipf_s, 0.0);  // hot block 0 gives a positive skew fit
  const std::string text = format_profile(p);
  EXPECT_NE(text.find("records"), std::string::npos);
  EXPECT_NE(text.find("zipf_s"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Profiler, NfsOpMixIsCounted) {
  const std::string path = temp_path("now_replay_profile_nfs.trace");
  {
    std::ofstream f(path);
    f << kNfsSample;
  }
  const TraceProfile p = profile_trace(path);
  EXPECT_EQ(p.format, TraceFormat::kNfs);
  EXPECT_EQ(p.records, 6u);
  EXPECT_EQ(p.data_ops, 3u);
  EXPECT_EQ(p.meta_ops, 3u);
  EXPECT_EQ(p.op_counts[static_cast<std::size_t>(NfsOp::kRead)], 2u);
  EXPECT_EQ(p.op_counts[static_cast<std::size_t>(NfsOp::kGetattr)], 1u);
  EXPECT_NEAR(p.mean_data_bytes, 8'192.0, 0.1);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ServeWorkload replay arrival source

std::string run_serve_replay(const std::string& path, unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building = net::building_now(2, 4, 2.0);
  cfg.with_glunix = false;
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.seed = 7;
  Cluster c(cfg);

  xfs::CentralFsParams p;
  p.client_cache_blocks = 0;
  std::vector<os::Node*> fsc;
  for (std::uint32_t i = 1; i < 8; ++i) fsc.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), fsc, p);
  fs.prewarm(64);
  fs.start();

  serve::ServeConfig sc;
  sc.population.clients = 6;
  sc.population.open_fraction = 1.0;
  sc.population.offered_per_sec = 50.0;
  sc.population.horizon = sim::kSecond;
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.slo = 25 * sim::kMillisecond;
  rd.working_set = 64;
  serve::RequestClass wr;
  wr.name = "write";
  wr.op = serve::RequestOp::kFileWrite;
  wr.slo = 100 * sim::kMillisecond;
  wr.working_set = 64;
  sc.classes = {rd, wr};
  for (std::uint32_t i = 1; i < 8; ++i) sc.client_nodes.push_back(i);
  sc.replay.path = path;
  sc.replay.clients = 3;
  sc.replay.time_scale = 1.0;
  sc.seed = 7;

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b, sc, c.parallel_engine());
  w.start();
  c.run_until(1'200 * sim::kMillisecond);

  const serve::ServeTotals t = w.totals();
  const serve::SloClassReport all = w.slo().overall(sc.population.horizon);
  std::ostringstream out;
  out << "arrivals=" << t.arrivals << " open=" << t.open_arrivals
      << " replayed=" << t.replayed_arrivals
      << " completed=" << t.completed << " ok=" << all.ok << " p99_us="
      << static_cast<long long>(all.p99_ms * 1000);
  return out.str();
}

TEST(ServeReplay, RecordedArrivalsAreCountedAndServed) {
  const std::string path = temp_path("now_replay_serve.trace");
  {
    // 200 records inside the 1 s horizon, mixed clients, 25 % writes.
    std::ofstream f(path);
    for (int i = 0; i < 200; ++i) {
      f << i * 4'000 << " " << i % 5 << " " << i % 300 << " "
        << (i % 4 == 0 ? 'w' : 'r') << "\n";
    }
  }
  const std::string r = run_serve_replay(path, 1);
  EXPECT_NE(r.find("replayed=200"), std::string::npos) << r;
  std::remove(path.c_str());
}

TEST(ServeReplay, ThreadCountCannotMoveAnArrival) {
  const std::string path = temp_path("now_replay_serve_threads.trace");
  {
    std::ofstream f(path);
    for (int i = 0; i < 300; ++i) {
      f << i * 3'000 << " " << i % 7 << " " << i % 500 << " "
        << (i % 5 == 0 ? 'w' : 'r') << "\n";
    }
  }
  const std::string t1 = run_serve_replay(path, 1);
  const std::string t2 = run_serve_replay(path, 2);
  const std::string t4 = run_serve_replay(path, 4);
  EXPECT_NE(t1.find("replayed="), std::string::npos);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace now::replay
