// now::sim::ParallelEngine — partitioned intra-run execution.
//
// The contract under test (DESIGN.md §12): at relaxed_sync = 1.0 a
// partitioned run is *result-identical* to the serial engine at any
// thread count.  Covered here: the new Engine epoch primitives, the
// deterministic cross-lane merge order (golden), digest equality for
// threads {1, 2, 8} on a partition-clean RPC workload, a fault landing
// in a non-zero partition, an all-to-all stress shaped for TSan, and
// the sweep-nesting thread-budget clamp.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"

namespace now {
namespace {

// --- Engine epoch primitives ------------------------------------------

TEST(EngineEpoch, RunWhileBeforeStopsStrictlyAtBound) {
  sim::Engine e;
  std::vector<int> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(19, [&] { fired.push_back(19); });
  e.schedule_at(20, [&] { fired.push_back(20); });  // == bound: stays
  e.schedule_at(25, [&] { fired.push_back(25); });
  EXPECT_EQ(e.run_while_before(20), 2u);
  EXPECT_EQ(fired, (std::vector<int>{10, 19}));
  // The clock holds at the last dispatched event; the bound is a filter,
  // not a time warp.
  EXPECT_EQ(e.now(), 19);
  sim::SimTime next = 0;
  ASSERT_TRUE(e.peek_next(&next));
  EXPECT_EQ(next, 20);
  EXPECT_EQ(e.run_while_before(30), 2u);
  EXPECT_EQ(fired, (std::vector<int>{10, 19, 20, 25}));
}

TEST(EngineEpoch, PeekNextAndAdvanceTo) {
  sim::Engine e;
  sim::SimTime next = 0;
  EXPECT_FALSE(e.peek_next(&next));  // empty queue
  e.advance_to(100);                 // legal: nothing to skip
  EXPECT_EQ(e.now(), 100);
  e.schedule_at(250, [] {});
  ASSERT_TRUE(e.peek_next(&next));
  EXPECT_EQ(next, 250);
  e.advance_to(250);  // up to (==) the pending event is allowed
  EXPECT_EQ(e.now(), 250);
  EXPECT_EQ(e.run(), 1u);
  e.advance_to(240);  // never backwards
  EXPECT_EQ(e.now(), 250);
}

// --- Deterministic cross-lane merge order (golden) --------------------

TEST(ParallelEngine, MergeOrderIsTimeSrcSeq) {
  sim::Engine global;
  sim::ParallelConfig pc;
  pc.threads = 4;
  pc.nodes = 8;      // nodes {0,1} lane 0, {2,3} lane 1, ...
  pc.lookahead = 10;
  sim::ParallelEngine pe(global, pc);
  ASSERT_EQ(pe.lanes(), 4u);
  EXPECT_EQ(pe.lane_of(0), 0u);
  EXPECT_EQ(pe.lane_of(7), 3u);
  EXPECT_FALSE(pe.same_lane(0, 7));
  EXPECT_TRUE(pe.same_lane(6, 7));

  // Posts arrive in scrambled wall order, from several source nodes, with
  // duplicate timestamps.  The drain must execute them sorted by
  // (order_time, src_node, dst_node, per-mailbox seq) — a key with no
  // lane id in it, so this golden sequence is what *any* thread count
  // produces.
  std::vector<std::string> order;
  const auto rec = [&order](std::string tag) {
    return [&order, tag] { order.push_back(tag); };
  };
  pe.post(5, 0, 30, rec("t30 src5"));
  pe.post(1, 6, 20, rec("t20 src1 dst6"));
  pe.post(6, 2, 10, rec("t10 src6"));
  pe.post(1, 2, 20, rec("t20 src1 dst2"));  // same (time, src): dst breaks it
  pe.post(1, 2, 20, rec("t20 src1 dst2 #1"));  // same dst too: seq breaks it
  pe.post(0, 7, 20, rec("t20 src0"));
  pe.post(7, 0, 5, rec("t5 src7"));
  pe.run();
  EXPECT_EQ(order, (std::vector<std::string>{
                       "t5 src7", "t10 src6", "t20 src0", "t20 src1 dst2",
                       "t20 src1 dst2 #1", "t20 src1 dst6", "t30 src5"}));
  EXPECT_EQ(pe.messages_posted(), 7u);
}

// --- A partition-clean workload shared by the digest tests ------------

struct EchoResult {
  std::vector<std::uint64_t> ops;       // per node
  std::vector<std::uint64_t> lat;       // per node, integer ticks
  std::uint64_t rpc_timeouts = 0;
  std::uint64_t crashes = 0;
};

// Every node RPC-echoes 256 B to a partner half the cluster away until
// the horizon.  All driver state is per-node and lane-confined, so the
// workload is partition-clean; with `plan`, the cluster machinery
// injects faults from the exclusive global lane.
EchoResult run_echo(std::uint32_t nodes, unsigned threads,
                    sim::SimTime horizon, fault::FaultPlan plan = {},
                    double relaxed_sync = 1.0) {
  constexpr proto::MethodId kEcho = 9;
  ClusterConfig cfg;
  cfg.workstations = nodes;
  cfg.with_glunix = false;
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.relaxed_sync = relaxed_sync;
  cfg.fault_plan = std::move(plan);
  Cluster c(cfg);

  EchoResult r;
  r.ops.assign(nodes, 0);
  r.lat.assign(nodes, 0);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    c.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn f) {
          f(256, std::move(req));
        });
  }
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, &r, issue, nodes, horizon](std::uint32_t i) {
    sim::Engine& e = c.network().engine_for(i);
    if (e.now() >= horizon) return;
    const sim::SimTime t0 = e.now();
    const auto again = [&c, issue, i](sim::Duration think) {
      c.network().engine_for(i).schedule_in(think, [issue, i] {
        if (*issue) (*issue)(i);
      });
    };
    c.rpc().call(
        i, (i + nodes / 2) % nodes, kEcho, 256, std::any{},
        [&c, &r, i, t0, again](std::any) {
          ++r.ops[i];
          r.lat[i] += static_cast<std::uint64_t>(
              c.network().engine_for(i).now() - t0);
          again(20 * sim::kMicrosecond + (i % 7) * sim::kMicrosecond);
        },
        2 * sim::kMillisecond, [again] { again(50 * sim::kMicrosecond); });
  };
  for (std::uint32_t i = 0; i < nodes; ++i) {
    c.network().engine_for(i).schedule_at(
        static_cast<sim::SimTime>((i * 13) % 41) * sim::kMicrosecond,
        [issue, i] {
          if (*issue) (*issue)(i);
        });
  }
  c.run_until(horizon + 3 * sim::kMillisecond);
  *issue = nullptr;
  r.rpc_timeouts = c.rpc().timeouts();
  r.crashes = c.faults().stats().node_crashes;
  return r;
}

TEST(ParallelCluster, DigestEqualAcrossThreadCounts) {
  const sim::SimTime horizon = 20 * sim::kMillisecond;
  const EchoResult serial = run_echo(16, 1, horizon);
  std::uint64_t total = 0;
  for (const std::uint64_t o : serial.ops) total += o;
  ASSERT_GT(total, 0u);
  for (const unsigned threads : {2u, 8u}) {
    const EchoResult par = run_echo(16, threads, horizon);
    EXPECT_EQ(par.ops, serial.ops) << "threads=" << threads;
    EXPECT_EQ(par.lat, serial.lat) << "threads=" << threads;
    EXPECT_EQ(par.rpc_timeouts, serial.rpc_timeouts);
  }
}

TEST(ParallelCluster, FaultInNonZeroPartitionMatchesSerial) {
  // Node 13 lives in the last of 4 lanes (16 nodes); crash it mid-run and
  // bring it back.  The injection runs on the exclusive global lane but
  // mutates partition-resident node state; its callers burn RPC timeouts
  // until the restart.  Everything must equal the serial run exactly.
  const sim::SimTime horizon = 20 * sim::kMillisecond;
  fault::FaultPlan plan;
  plan.crash_at(5 * sim::kMillisecond, 13)
      .restart_at(12 * sim::kMillisecond, 13);
  const EchoResult serial = run_echo(16, 1, horizon, plan);
  EXPECT_EQ(serial.crashes, 1u);
  EXPECT_GT(serial.rpc_timeouts, 0u);  // the crash was actually felt
  const EchoResult par = run_echo(16, 4, horizon, plan);
  EXPECT_EQ(par.ops, serial.ops);
  EXPECT_EQ(par.lat, serial.lat);
  EXPECT_EQ(par.rpc_timeouts, serial.rpc_timeouts);
  EXPECT_EQ(par.crashes, 1u);
}

TEST(ParallelCluster, RelaxedSyncRunsToCompletion) {
  // relaxed_sync > 1 widens epochs: no determinism-vs-serial claim (that
  // is the documented trade), but it must drive the workload to the
  // horizon with every node making progress.
  const EchoResult r =
      run_echo(16, 4, 10 * sim::kMillisecond, {}, /*relaxed_sync=*/8.0);
  for (const std::uint64_t o : r.ops) EXPECT_GT(o, 0u);
}

// --- All-to-all stress (the TSan target) ------------------------------

TEST(ParallelCluster, AllToAllStress) {
  // Every node fires at every other node round-robin with minimal think
  // time: all P^2 mailboxes stay hot and every lane pair exercises the
  // post/drain path concurrently.  Run under -fsanitize=thread in CI.
  constexpr proto::MethodId kEcho = 9;
  constexpr std::uint32_t kNodes = 24;
  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.with_glunix = false;
  cfg.threads = 8;
  cfg.partitioning = Partitioning::kNodeLocal;
  Cluster c(cfg);
  ASSERT_GT(c.effective_threads(), 1u);

  std::vector<std::uint64_t> ops(kNodes, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    c.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn f) {
          f(64, std::move(req));
        });
  }
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, &ops, issue](std::uint32_t i) {
    if (c.network().engine_for(i).now() >= 4 * sim::kMillisecond) return;
    const std::uint32_t dst =
        (i + 1 + static_cast<std::uint32_t>(ops[i] % (kNodes - 1))) % kNodes;
    c.rpc().call(i, dst, kEcho, 64, std::any{}, [&ops, issue, i](std::any) {
      ++ops[i];
      if (*issue) (*issue)(i);
    });
  };
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    c.network().engine_for(i).schedule_at(0, [issue, i] {
      if (*issue) (*issue)(i);
    });
  }
  c.run_until(6 * sim::kMillisecond);
  *issue = nullptr;
  ASSERT_NE(c.parallel_engine(), nullptr);
  EXPECT_GT(c.parallel_engine()->messages_posted(), 0u);
  for (std::uint32_t i = 0; i < kNodes; ++i) EXPECT_GT(ops[i], 0u);
}

// --- Sweep nesting: jobs x threads must not oversubscribe -------------

TEST(ParallelCluster, SweepClampsNestedThreadBudget) {
  // Inside a 2-job sweep each task may use at most hw/2 lanes (min 1);
  // the cluster reads RunContext::thread_budget and clamps. On a 1-core
  // machine this collapses to the serial engine — also worth pinning.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned budget = std::max(1u, hw / 2);
  const auto lanes = exp::run_sweep(
      2,
      [](exp::RunContext& ctx) {
        ClusterConfig cfg;
        cfg.workstations = 16;
        cfg.with_glunix = false;
        cfg.threads = 16;  // asks for far more than the budget
        cfg.partitioning = Partitioning::kNodeLocal;
        cfg.run = &ctx;
        Cluster c(cfg);
        c.run_until(1 * sim::kMicrosecond);
        return c.effective_threads();
      },
      {.jobs = 2});
  for (const unsigned l : lanes) {
    EXPECT_LE(l, std::max(budget, 1u));
    if (budget == 1) EXPECT_EQ(l, 1u);  // pe_ skipped entirely
  }
}

}  // namespace
}  // namespace now
