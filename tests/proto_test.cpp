// Tests for the protocol layers: Active Messages, TCP model, RPC.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/presets.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/am_sockets.hpp"
#include "proto/costs.hpp"
#include "proto/nic_mux.hpp"
#include "proto/pvm.hpp"
#include "proto/rpc.hpp"
#include "proto/tcp.hpp"
#include "sim/engine.hpp"

namespace now::proto {
namespace {

using namespace now::sim::literals;

// A small rig: N workstations on a Medusa-class switched fabric.
struct Rig {
  explicit Rig(int n, net::FabricParams fabric = net::fddi_medusa()) {
    network = std::make_unique<net::SwitchedNetwork>(engine, fabric);
    mux = std::make_unique<NicMux>(*network);
    for (int i = 0; i < n; ++i) {
      os::NodeParams p;
      p.cpu.context_switch = 0;
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), p));
      mux->attach_node(*nodes.back());
    }
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<NicMux> mux;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

TEST(Am, InterruptHandlerRunsAtOneWayTime) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 = am.create_endpoint(*rig.nodes[0],
                                           AmLayer::Mode::kInterrupt);
  const EndpointId e1 = am.create_endpoint(*rig.nodes[1],
                                           AmLayer::Mode::kInterrupt);
  sim::SimTime at = -1;
  am.register_handler(e1, 1, [&](const AmMessage&) { at = rig.engine.now(); });
  am.send(e0, e1, 1, 64, {});
  rig.engine.run();
  const auto expect = am.unloaded_one_way(
      64, rig.network->unloaded_transit(64 + 16));
  EXPECT_EQ(at, expect);
}

TEST(Am, PayloadAndMetadataArriveIntact) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  std::string got;
  EndpointId got_src = kInvalidEndpoint;
  std::uint32_t got_bytes = 0;
  am.register_handler(e1, 7, [&](const AmMessage& m) {
    got = std::any_cast<std::string>(m.payload);
    got_src = m.src_ep;
    got_bytes = m.bytes;
  });
  am.send(e0, e1, 7, 128, std::string("hello NOW"));
  rig.engine.run();
  EXPECT_EQ(got, "hello NOW");
  EXPECT_EQ(got_src, e0);
  EXPECT_EQ(got_bytes, 128u);
}

TEST(Am, RequestReplyRoundTrip) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  sim::SimTime reply_at = -1;
  am.register_handler(e1, 1, [&](const AmMessage&) {
    am.send(e1, e0, 2, 16, {});  // reply from within the handler
  });
  am.register_handler(e0, 2,
                      [&](const AmMessage&) { reply_at = rig.engine.now(); });
  am.send(e0, e1, 1, 16, {});
  rig.engine.run();
  EXPECT_GT(reply_at, 0);
  EXPECT_EQ(am.stats().handled, 2u);
}

TEST(Am, BulkTransferDeliversOnceWithAllBytes) {
  Rig rig(2);
  AmParams params;
  params.mtu_bytes = 8192;
  AmLayer am(*rig.mux, params);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  int handler_runs = 0;
  std::uint32_t bytes = 0;
  am.register_handler(e1, 3, [&](const AmMessage& m) {
    ++handler_runs;
    bytes = m.bytes;
  });
  am.send(e0, e1, 3, 100'000, {});  // 13 fragments
  rig.engine.run();
  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(bytes, 100'000u);
  EXPECT_EQ(am.stats().sent, 13u);
}

TEST(Am, WindowLimitsInFlightUntilAcked) {
  Rig rig(2);
  AmParams params;
  params.window = 4;
  AmLayer am(*rig.mux, params);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  int handled = 0;
  am.register_handler(e1, 1, [&](const AmMessage&) { ++handled; });
  int injected = 0;
  for (int i = 0; i < 10; ++i) {
    am.send(e0, e1, 1, 32, {}, [&] { ++injected; });
  }
  EXPECT_EQ(injected, 4);  // only a window's worth leaves immediately
  rig.engine.run();
  EXPECT_EQ(injected, 10);  // acks opened the window
  EXPECT_EQ(handled, 10);
}

TEST(Am, PollingEndpointWaitsForOwnerToRun) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kPolling);
  sim::SimTime handled_at = -1;
  am.register_handler(e1, 1,
                      [&](const AmMessage&) { handled_at = rig.engine.now(); });

  os::Cpu& cpu1 = rig.nodes[1]->cpu();
  // The endpoint owner computes without polling gaps only after 500 ms.
  std::vector<os::ProcessId> owner(1);
  owner[0] = cpu1.spawn("owner", os::SchedClass::kBatch, [&cpu1, &owner] {
    cpu1.block(owner[0], [&cpu1, &owner] { cpu1.exit(owner[0]); });
  });
  rig.engine.run();  // owner blocks (descheduled, cannot poll)
  am.set_owner(e1, owner[0]);

  am.send(e0, e1, 1, 32, {});
  rig.engine.run();
  EXPECT_EQ(handled_at, -1);  // owner never ran: message sits unpolled

  rig.engine.schedule_at(500_ms, [&] { cpu1.wake(owner[0]); });
  rig.engine.run();
  EXPECT_GE(handled_at, 500_ms);  // drained at dispatch
}

TEST(Am, PollingWhileOwnerRunningHandlesImmediately) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kPolling);
  sim::SimTime handled_at = -1;
  am.register_handler(e1, 1,
                      [&](const AmMessage&) { handled_at = rig.engine.now(); });
  os::Cpu& cpu1 = rig.nodes[1]->cpu();
  std::vector<os::ProcessId> owner(1);
  owner[0] = cpu1.spawn("owner", os::SchedClass::kBatch, [&cpu1, &owner] {
    cpu1.compute(owner[0], 10_s, [&cpu1, &owner] { cpu1.exit(owner[0]); });
  });
  am.set_owner(e1, owner[0]);
  rig.engine.schedule_at(1_s, [&] { am.send(e0, e1, 1, 32, {}); });
  rig.engine.run();
  // Handled while the owner was computing (polling loop), not at 10 s.
  EXPECT_GT(handled_at, 1_s);
  EXPECT_LT(handled_at, 2_s);
}

TEST(Am, InjectedLossIsRepairedByRetransmission) {
  Rig rig(2);
  AmParams params;
  params.loss_probability = 0.2;
  params.retry_timeout = 5_ms;
  AmLayer am(*rig.mux, params, /*seed=*/99);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  int handled = 0;
  am.register_handler(e1, 1, [&](const AmMessage&) { ++handled; });
  for (int i = 0; i < 50; ++i) am.send(e0, e1, 1, 64, {});
  rig.engine.run();
  EXPECT_EQ(handled, 50);  // exactly once despite losses
  EXPECT_GT(am.stats().retransmits, 0u);
  EXPECT_GT(am.stats().injected_losses, 0u);
}

TEST(Am, SendToCrashedNodeTriggersFailureHandler) {
  Rig rig(2);
  AmParams params;
  params.retry_timeout = 2_ms;
  params.max_retries = 3;
  AmLayer am(*rig.mux, params);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  am.register_handler(e1, 1, [](const AmMessage&) {});
  bool failed = false;
  am.set_failure_handler([&](EndpointId s, EndpointId d) {
    EXPECT_EQ(s, e0);
    EXPECT_EQ(d, e1);
    failed = true;
  });
  rig.nodes[1]->crash();
  am.send(e0, e1, 1, 64, {});
  rig.engine.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(am.stats().handled, 0u);
}

TEST(Am, SendFromProcessBlocksOnFullWindow) {
  Rig rig(2);
  AmParams params;
  params.window = 2;
  AmLayer am(*rig.mux, params);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kPolling);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kPolling);
  int handled = 0;
  am.register_handler(e1, 1, [&](const AmMessage&) { ++handled; });

  os::Cpu& cpu0 = rig.nodes[0]->cpu();
  os::Cpu& cpu1 = rig.nodes[1]->cpu();

  // Receiver process: just computes (and thereby polls) forever.
  std::vector<os::ProcessId> rxp(1);
  rxp[0] = cpu1.spawn("rx", os::SchedClass::kBatch, [&cpu1, &rxp] {
    cpu1.compute(rxp[0], 10_s, [&cpu1, &rxp] { cpu1.exit(rxp[0]); });
  });
  am.set_owner(e1, rxp[0]);

  // Sender fires 20 sends back to back; with window 2 it must stall and
  // resume as acks return.
  std::vector<os::ProcessId> txp(1);
  int sent = 0;
  std::function<void()> send_next = [&] {
    if (sent == 20) {
      cpu0.exit(txp[0]);
      return;
    }
    ++sent;
    am.send_from_process(txp[0], e0, e1, 1, 32, {}, [&] { send_next(); });
  };
  txp[0] = cpu0.spawn("tx", os::SchedClass::kBatch, [&] { send_next(); });
  am.set_owner(e0, txp[0]);
  rig.engine.run();
  EXPECT_EQ(sent, 20);
  EXPECT_EQ(handled, 20);
  EXPECT_GT(am.stats().stalled_sends, 0u);
}

TEST(NicAdmission, OnlyAttestedNodesMayTalk) {
  Rig rig(3);
  AmLayer am(*rig.mux, AmParams{});
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kInterrupt);
  int handled = 0;
  am.register_handler(e1, 1, [&](const AmMessage&) { ++handled; });

  // Enforcement on: the blessed kernel hashes to 0xB007.
  rig.mux->require_admission(0xB007);
  EXPECT_FALSE(rig.mux->admitted(0));
  EXPECT_FALSE(rig.mux->admit(0, 0xBAD));  // wrong image
  EXPECT_TRUE(rig.mux->admit(0, 0xB007));
  EXPECT_TRUE(rig.mux->admit(1, 0xB007));

  am.send(e0, e1, 1, 64, {});
  rig.engine.run_until(rig.engine.now() + sim::kSecond);
  EXPECT_EQ(handled, 1);

  // Node 0 reboots into an unknown kernel: expelled; its traffic vanishes.
  rig.mux->expel(0);
  am.send(e0, e1, 1, 64, {});
  rig.engine.run_until(rig.engine.now() + 500 * sim::kMillisecond);
  EXPECT_EQ(handled, 1);
  EXPECT_GT(rig.mux->rejected_packets(), 0u);

  // Re-attesting (before the sender's window gives the message up for
  // dead) restores service: a retransmission gets through.
  EXPECT_TRUE(rig.mux->admit(0, 0xB007));
  rig.engine.run_until(rig.engine.now() + 10 * sim::kSecond);
  EXPECT_EQ(handled, 2);
}

TEST(NicAdmission, OffByDefault) {
  Rig rig(2);
  EXPECT_TRUE(rig.mux->admitted(0));
  EXPECT_TRUE(rig.mux->admitted(1));
}

TEST(Tcp, OneWaySmallMessageNear456usOnEthernetClassPath) {
  // The paper: 456 us processor overhead + unloaded latency for one small
  // message through kernel TCP on Ethernet.
  Rig rig(2, net::ethernet_10mbps());
  // Shared-bus rig: rebuild with a shared medium.
  sim::Engine eng;
  net::SharedBusNetwork bus(eng, net::ethernet_10mbps());
  NicMux mux(bus);
  os::Node n0(eng, 0, os::NodeParams{});
  os::Node n1(eng, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  TcpLayer tcp(mux, TcpParams{});
  sim::SimTime at = -1;
  tcp.listen(1, 80, [&](TcpMessage&&) { at = eng.now(); });
  tcp.send(0, 1000, 1, 80, 100, {});
  eng.run();
  EXPECT_NEAR(sim::to_us(at), 456, 60);
}

TEST(Tcp, LargeMessageSegmentsAndDeliversOnce) {
  Rig rig(2);
  TcpParams params;
  params.mtu_bytes = 1500;
  TcpLayer tcp(*rig.mux, params);
  int deliveries = 0;
  std::uint32_t bytes = 0;
  tcp.listen(1, 80, [&](TcpMessage&& m) {
    ++deliveries;
    bytes = m.bytes;
  });
  tcp.send(0, 1000, 1, 80, 10'000, {});
  rig.engine.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(bytes, 10'000u);
  EXPECT_EQ(tcp.stats().segments, 7u);
}

TEST(Tcp, HostOverheadCapsThroughputBelowWire) {
  // TCP on 155 Mb/s ATM delivered only ~78 Mb/s: the stack, not the wire,
  // is the bottleneck.
  sim::Engine eng;
  net::SwitchedNetwork atm(eng, net::atm_155mbps());
  NicMux mux(atm);
  os::Node n0(eng, 0, os::NodeParams{});
  os::Node n1(eng, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  TcpParams params;
  params.mtu_bytes = 9180;
  TcpLayer tcp(mux, params);
  sim::SimTime done_at = -1;
  const std::uint32_t total = 4 << 20;  // 4 MB
  tcp.listen(1, 80, [&](TcpMessage&&) { done_at = eng.now(); });
  tcp.send(0, 1, 1, 80, total, {});
  eng.run();
  const double mbps = static_cast<double>(total) * 8.0 /
                      sim::to_sec(done_at) / 1e6;
  EXPECT_LT(mbps, 120);  // well below the 155 Mb/s wire
  EXPECT_GT(mbps, 40);
}

TEST(Tcp, SmallWindowStallsButEverythingArrives) {
  Rig rig(2);
  TcpParams params;
  params.mtu_bytes = 1500;
  params.window_bytes = 3'000;  // two segments in flight
  TcpLayer tcp(*rig.mux, params);
  int deliveries = 0;
  tcp.listen(1, 80, [&](TcpMessage&&) { ++deliveries; });
  tcp.send(0, 9, 1, 80, 60'000, {});
  rig.engine.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_GT(tcp.stats().window_stalls, 0u);
  EXPECT_GT(tcp.stats().acks, 30u);
}

TEST(Tcp, WindowLimitsThroughputOnLongPaths) {
  // Same transfer, same wire, two window sizes: with a high-latency path
  // the window caps bandwidth at window/RTT.
  auto run = [](std::uint32_t window) {
    sim::Engine eng;
    net::FabricParams slow = net::atm_155mbps();
    slow.latency = 5 * sim::kMillisecond;  // a campus-length path
    net::SwitchedNetwork fabric(eng, slow);
    NicMux mux(fabric);
    os::Node n0(eng, 0, os::NodeParams{});
    os::Node n1(eng, 1, os::NodeParams{});
    mux.attach_node(n0);
    mux.attach_node(n1);
    TcpParams params;
    params.mtu_bytes = 9'180;
    params.window_bytes = window;
    TcpLayer tcp(mux, params);
    sim::SimTime done = -1;
    tcp.listen(1, 80, [&](TcpMessage&&) { done = eng.now(); });
    tcp.send(0, 9, 1, 80, 2 << 20, {});
    eng.run();
    return sim::to_sec(done);
  };
  const double small = run(16 * 1024);
  const double big = run(256 * 1024);
  EXPECT_GT(small / big, 2.0);
}

TEST(Am, BulkTransferToPollingEndpointDrainsAtDispatch) {
  Rig rig(2);
  AmParams params;
  params.mtu_bytes = 8192;
  AmLayer am(*rig.mux, params);
  const EndpointId e0 =
      am.create_endpoint(*rig.nodes[0], AmLayer::Mode::kInterrupt);
  const EndpointId e1 =
      am.create_endpoint(*rig.nodes[1], AmLayer::Mode::kPolling);
  std::uint32_t got = 0;
  am.register_handler(e1, 1,
                      [&](const AmMessage& m) { got = m.bytes; });
  os::Cpu& cpu1 = rig.nodes[1]->cpu();
  std::vector<os::ProcessId> owner(1);
  owner[0] = cpu1.spawn("owner", os::SchedClass::kBatch, [&cpu1, &owner] {
    cpu1.block(owner[0], [&cpu1, &owner] { cpu1.exit(owner[0]); });
  });
  rig.engine.run();  // owner parks
  am.set_owner(e1, owner[0]);
  am.send(e0, e1, 1, 50'000, {});  // 7 fragments, receiver descheduled
  rig.engine.run();
  EXPECT_EQ(got, 0u);  // nothing handled while unpolled
  cpu1.wake(owner[0]);
  rig.engine.run();
  EXPECT_EQ(got, 50'000u);  // whole message assembled at dispatch
}

TEST(NicMuxTest, StackReservationSerializesPerNode) {
  Rig rig(2);
  const sim::SimTime a = rig.mux->reserve_stack(0, sim::from_us(100));
  const sim::SimTime b = rig.mux->reserve_stack(0, sim::from_us(50));
  const sim::SimTime other = rig.mux->reserve_stack(1, sim::from_us(10));
  EXPECT_EQ(a, sim::from_us(100));
  EXPECT_EQ(b, sim::from_us(150));   // queued behind a on the same node
  EXPECT_EQ(other, sim::from_us(10));  // nodes are independent
}

TEST(AmSocketsTest, DeliversWithPortsAndPayload) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  AmSockets socks(am);
  socks.bind_node(*rig.nodes[0]);
  socks.bind_node(*rig.nodes[1]);
  AmSocketMessage got;
  bool received = false;
  socks.listen(1, 443, [&](AmSocketMessage&& m) {
    got = std::move(m);
    received = true;
  });
  socks.send(0, 1234, 1, 443, 100, std::string("fast sockets"));
  rig.engine.run();
  ASSERT_TRUE(received);
  EXPECT_EQ(got.src, 0u);
  EXPECT_EQ(got.src_port, 1234);
  EXPECT_EQ(got.bytes, 100u);
  EXPECT_EQ(std::any_cast<std::string>(got.payload), "fast sockets");
}

TEST(AmSocketsTest, NearlyAnOrderOfMagnitudeFasterThanTcp) {
  // The paper: sockets on AM run one small message one-way in ~25 us vs
  // ~250 us through TCP on the same (Medusa) hardware.
  Rig rig(2);
  AmParams ap;
  ap.costs = am_medusa();
  AmLayer am(*rig.mux, ap);
  AmSockets socks(am);
  socks.bind_node(*rig.nodes[0]);
  socks.bind_node(*rig.nodes[1]);
  sim::SimTime am_at = -1;
  socks.listen(1, 80, [&](AmSocketMessage&&) { am_at = rig.engine.now(); });
  socks.send(0, 9, 1, 80, 64, {});
  rig.engine.run();

  Rig rig2(2);
  TcpParams tp;
  tp.costs = tcp_kernel();
  TcpLayer tcp(*rig2.mux, tp);
  sim::SimTime tcp_at = -1;
  tcp.listen(1, 80, [&](TcpMessage&&) { tcp_at = rig2.engine.now(); });
  tcp.send(0, 9, 1, 80, 64, {});
  rig2.engine.run();

  EXPECT_LT(sim::to_us(am_at), 50);    // paper: ~25 us
  EXPECT_GT(sim::to_us(tcp_at), 250);  // kernel path
  EXPECT_GT(static_cast<double>(tcp_at) / static_cast<double>(am_at), 7.0);
}

// --- PVM ---------------------------------------------------------------

struct PvmRig {
  PvmRig() : rig(2), tcp(*rig.mux, proto::TcpParams{}), pvm(*rig.mux, tcp) {}
  Rig rig;
  TcpLayer tcp;
  PvmLayer pvm;
};

TEST(Pvm, SendRecvByTag) {
  PvmRig r;
  os::Cpu& cpu0 = r.rig.nodes[0]->cpu();
  os::Cpu& cpu1 = r.rig.nodes[1]->cpu();
  std::vector<os::ProcessId> p0(1), p1(1);
  int got = 0;
  PvmTaskId t0 = kInvalidTask, t1 = kInvalidTask;

  p1[0] = cpu1.spawn("rx", os::SchedClass::kBatch, [&] {
    r.pvm.recv(t1, 7, [&](PvmMessage&& m) {
      got = std::any_cast<int>(m.payload);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.source, t0);
      cpu1.exit(p1[0]);
    });
  });
  p0[0] = cpu0.spawn("tx", os::SchedClass::kBatch, [&] {
    r.pvm.send(t0, t1, 7, 1024, 99, [&] { cpu0.exit(p0[0]); });
  });
  t0 = r.pvm.enroll(*r.rig.nodes[0], p0[0]);
  t1 = r.pvm.enroll(*r.rig.nodes[1], p1[0]);
  r.rig.engine.run();
  EXPECT_EQ(got, 99);
}

TEST(Pvm, WildcardAndTagFiltering) {
  PvmRig r;
  os::Cpu& cpu0 = r.rig.nodes[0]->cpu();
  os::Cpu& cpu1 = r.rig.nodes[1]->cpu();
  std::vector<os::ProcessId> p0(1), p1(1);
  PvmTaskId t0 = kInvalidTask, t1 = kInvalidTask;
  std::vector<int> order;

  p1[0] = cpu1.spawn("rx", os::SchedClass::kBatch, [&] {
    // Ask for tag 2 first even though tag 1 arrives first, then wildcard.
    r.pvm.recv(t1, 2, [&](PvmMessage&& m) {
      order.push_back(m.tag);
      r.pvm.recv(t1, -1, [&](PvmMessage&& m2) {
        order.push_back(m2.tag);
        cpu1.exit(p1[0]);
      });
    });
  });
  p0[0] = cpu0.spawn("tx", os::SchedClass::kBatch, [&] {
    r.pvm.send(t0, t1, 1, 64, {}, [&] {
      r.pvm.send(t0, t1, 2, 64, {}, [&] { cpu0.exit(p0[0]); });
    });
  });
  t0 = r.pvm.enroll(*r.rig.nodes[0], p0[0]);
  t1 = r.pvm.enroll(*r.rig.nodes[1], p1[0]);
  r.rig.engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // tag filter skipped the tag-1 message
  EXPECT_EQ(order[1], 1);  // wildcard then drained it
}

TEST(Pvm, DaemonBuffersWhileTaskDescheduled) {
  // The defining PVM property: the daemon accepts messages even though the
  // receiving task is off the CPU; the task reacts when next scheduled.
  PvmRig r;
  os::Cpu& cpu1 = r.rig.nodes[1]->cpu();
  std::vector<os::ProcessId> p1(1), hog(1);
  PvmTaskId t0, t1;
  // A compute hog monopolizes node 1.
  hog[0] = cpu1.spawn("hog", os::SchedClass::kBatch, [&] {
    cpu1.compute(hog[0], 2 * sim::kSecond, [&] { cpu1.exit(hog[0]); });
  });
  sim::SimTime received_at = -1;
  p1[0] = cpu1.spawn("rx", os::SchedClass::kBatch, [&] {
    r.pvm.recv(t1, 1, [&](PvmMessage&&) {
      received_at = r.rig.engine.now();
      cpu1.exit(p1[0]);
    });
  });
  os::Cpu& cpu0 = r.rig.nodes[0]->cpu();
  std::vector<os::ProcessId> p0(1);
  p0[0] = cpu0.spawn("tx", os::SchedClass::kBatch, [&] {
    r.pvm.send(t0, t1, 1, 512, {}, [&] { cpu0.exit(p0[0]); });
  });
  t0 = r.pvm.enroll(*r.rig.nodes[0], p0[0]);
  t1 = r.pvm.enroll(*r.rig.nodes[1], p1[0]);
  r.rig.engine.run();
  // Delivery happened despite the hog; the wake waited out RR quanta but
  // not the hog's full 2 s.
  EXPECT_GT(received_at, 0);
  EXPECT_LT(received_at, 1 * sim::kSecond);
  EXPECT_EQ(r.pvm.stats().delivered, 1u);
}

TEST(Pvm, OrderOfMagnitudeSlowerThanActiveMessages) {
  // The Table 4 story at message granularity: the same one-way small
  // message costs ~an order of magnitude more through the daemon path.
  PvmRig r;
  os::Cpu& cpu0 = r.rig.nodes[0]->cpu();
  os::Cpu& cpu1 = r.rig.nodes[1]->cpu();
  std::vector<os::ProcessId> p0(1), p1(1);
  PvmTaskId t0, t1;
  sim::SimTime pvm_at = -1;
  p1[0] = cpu1.spawn("rx", os::SchedClass::kBatch, [&] {
    r.pvm.recv(t1, 1, [&](PvmMessage&&) {
      pvm_at = r.rig.engine.now();
      cpu1.exit(p1[0]);
    });
  });
  p0[0] = cpu0.spawn("tx", os::SchedClass::kBatch, [&] {
    r.pvm.send(t0, t1, 1, 64, {}, [&] { cpu0.exit(p0[0]); });
  });
  t0 = r.pvm.enroll(*r.rig.nodes[0], p0[0]);
  t1 = r.pvm.enroll(*r.rig.nodes[1], p1[0]);
  r.rig.engine.run();

  Rig rig2(2);
  AmLayer am(*rig2.mux, AmParams{});
  const auto e0 =
      am.create_endpoint(*rig2.nodes[0], AmLayer::Mode::kInterrupt);
  const auto e1 =
      am.create_endpoint(*rig2.nodes[1], AmLayer::Mode::kInterrupt);
  sim::SimTime am_at = -1;
  am.register_handler(e1, 1,
                      [&](const AmMessage&) { am_at = rig2.engine.now(); });
  am.send(e0, e1, 1, 64, {});
  rig2.engine.run();

  EXPECT_GT(pvm_at, 0);
  EXPECT_GT(am_at, 0);
  EXPECT_GT(static_cast<double>(pvm_at) / static_cast<double>(am_at), 8.0);
}

TEST(Rpc, CallReturnsReply) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  RpcLayer rpc(am);
  rpc.bind(*rig.nodes[0]);
  rpc.bind(*rig.nodes[1]);
  rpc.register_method(1, 42,
                      [](net::NodeId caller, std::any req,
                         RpcLayer::ReplyFn reply) {
                        EXPECT_EQ(caller, 0u);
                        const int x = std::any_cast<int>(req);
                        reply(64, x * 2);
                      });
  int got = 0;
  rpc.call(0, 1, 42, 128, 21, [&](std::any resp) {
    got = std::any_cast<int>(resp);
  });
  rig.engine.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(rpc.replies_received(), 1u);
}

TEST(Rpc, DeferredReplyAfterServerSideWork) {
  Rig rig(2);
  AmLayer am(*rig.mux, AmParams{});
  RpcLayer rpc(am);
  rpc.bind(*rig.nodes[0]);
  rpc.bind(*rig.nodes[1]);
  sim::Engine& eng = rig.engine;
  rpc.register_method(1, 1,
                      [&](net::NodeId, std::any, RpcLayer::ReplyFn reply) {
                        // e.g. a disk access before answering
                        eng.schedule_in(15_ms, [reply = std::move(reply)] {
                          reply(8192, {});
                        });
                      });
  sim::SimTime got_at = -1;
  rpc.call(0, 1, 1, 64, {}, [&](std::any) { got_at = eng.now(); });
  eng.run();
  EXPECT_GT(got_at, 15_ms);
}

TEST(Rpc, TimeoutFiresOnCrashedServerAndLateReplyIsDropped) {
  Rig rig(2);
  AmParams params;
  params.retry_timeout = 2_ms;
  params.max_retries = 2;
  AmLayer am(*rig.mux, params);
  RpcLayer rpc(am);
  rpc.bind(*rig.nodes[0]);
  rpc.bind(*rig.nodes[1]);
  rpc.register_method(1, 1,
                      [](net::NodeId, std::any, RpcLayer::ReplyFn reply) {
                        reply(64, {});
                      });
  rig.nodes[1]->crash();
  bool replied = false;
  bool timed_out = false;
  rpc.call(0, 1, 1, 64, {}, [&](std::any) { replied = true; },
           /*timeout=*/50_ms, [&] { timed_out = true; });
  rig.engine.run();
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(replied);
  EXPECT_EQ(rpc.timeouts(), 1u);
}

}  // namespace
}  // namespace now::proto
