// Tests for software RAID over workstation disks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "raid/raid.hpp"
#include "raid/stripe_groups.hpp"
#include "sim/engine.hpp"

namespace now::raid {
namespace {

using namespace now::sim::literals;

struct Rig {
  explicit Rig(int n) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::myrinet());
    mux = std::make_unique<proto::NicMux>(*network);
    am = std::make_unique<proto::AmLayer>(*mux, proto::AmParams{});
    rpc = std::make_unique<proto::RpcLayer>(*am);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), os::NodeParams{}));
      mux->attach_node(*nodes.back());
      rpc->bind(*nodes.back());
      install_storage_service(*rpc, *nodes.back());
    }
  }
  std::vector<os::Node*> members(int first, int count) {
    std::vector<os::Node*> v;
    for (int i = first; i < first + count; ++i) v.push_back(nodes[i].get());
    return v;
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::unique_ptr<proto::RpcLayer> rpc;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

TEST(Raid, Raid0StripesAcrossAllMembers) {
  Rig rig(5);  // node 0 = client, 1-4 = members
  RaidParams p;
  p.level = Level::kRaid0;
  p.stripe_unit = 32 * 1024;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  bool done = false;
  raid.read(0, 0, 4 * 32 * 1024, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  // Each member served exactly one stripe unit.
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(rig.nodes[i]->disk().reads(), 1u) << "member " << i;
  }
}

TEST(Raid, Raid0ParallelReadBeatsSingleDisk) {
  const std::uint32_t total = 1 << 20;  // 1 MB
  sim::Duration striped = 0, single = 0;
  {
    Rig rig(5);
    RaidParams p;
    p.level = Level::kRaid0;
    SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
    const sim::SimTime t0 = rig.engine.now();
    sim::SimTime t1 = 0;
    raid.read(0, 0, total, [&] { t1 = rig.engine.now(); });
    rig.engine.run();
    striped = t1 - t0;
  }
  {
    Rig rig(2);
    sim::SimTime t1 = 0;
    // One remote disk serving the same megabyte.
    auto state = std::make_shared<std::uint32_t>(0);
    std::function<void()> next = [&rig, state, &t1, total,
                                  &next]() mutable {
      if (*state >= total) {
        t1 = rig.engine.now();
        return;
      }
      *state += 32 * 1024;
      rig.nodes[1]->disk().read(*state, 32 * 1024, next);
    };
    next();
    rig.engine.run();
    single = t1;
  }
  EXPECT_LT(striped, single);
  EXPECT_GT(static_cast<double>(single) / static_cast<double>(striped), 2.0);
}

TEST(Raid, Raid5SmallWriteDoesReadModifyWrite) {
  Rig rig(5);
  RaidParams p;
  p.level = Level::kRaid5;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  bool done = false;
  raid.write(0, 0, 8 * 1024, [&] { done = true; });  // partial stripe
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(raid.stats().parity_updates, 1u);
  EXPECT_EQ(raid.stats().full_stripe_writes, 0u);
  // 2 reads + 2 writes across the member disks.
  std::uint64_t reads = 0, writes = 0;
  for (int i = 1; i <= 4; ++i) {
    reads += rig.nodes[i]->disk().reads();
    writes += rig.nodes[i]->disk().writes();
  }
  EXPECT_EQ(reads, 2u);
  EXPECT_EQ(writes, 2u);
}

TEST(Raid, Raid5FullStripeWriteSkipsReads) {
  Rig rig(5);
  RaidParams p;
  p.level = Level::kRaid5;
  p.stripe_unit = 32 * 1024;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  bool done = false;
  // 3 data units (4 members - 1 parity) = one full row.
  raid.write(0, 0, 3 * 32 * 1024, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(raid.stats().full_stripe_writes, 3u);  // 3 data targets
  std::uint64_t reads = 0, writes = 0;
  for (int i = 1; i <= 4; ++i) {
    reads += rig.nodes[i]->disk().reads();
    writes += rig.nodes[i]->disk().writes();
  }
  EXPECT_EQ(reads, 0u);
  EXPECT_EQ(writes, 4u);  // 3 data + 1 parity
}

TEST(Raid, Raid5DegradedReadReconstructs) {
  Rig rig(5);
  RaidParams p;
  p.level = Level::kRaid5;
  p.stripe_unit = 32 * 1024;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  // Row 0: parity on member 0 (node 1); data on members 1,2,3.
  rig.nodes[2]->crash();
  raid.member_failed(2);
  bool done = false;
  raid.read(0, 0, 32 * 1024, [&] { done = true; });  // unit on member 1
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(raid.stats().degraded_reads, 1u);
  // Survivors (nodes 1, 3, 4) each served a reconstruction read.
  EXPECT_EQ(rig.nodes[1]->disk().reads(), 1u);
  EXPECT_EQ(rig.nodes[3]->disk().reads(), 1u);
  EXPECT_EQ(rig.nodes[4]->disk().reads(), 1u);
}

TEST(Raid, Raid5DegradedWriteStillCompletes) {
  Rig rig(5);
  RaidParams p;
  p.level = Level::kRaid5;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  rig.nodes[2]->crash();
  raid.member_failed(2);
  bool done = false;
  raid.write(0, 0, 8 * 1024, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

TEST(Raid, ReconstructionRestoresFullOperation) {
  Rig rig(6);  // nodes 1-4 members, node 5 spare
  RaidParams p;
  p.level = Level::kRaid5;
  p.stripe_unit = 32 * 1024;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  rig.nodes[2]->crash();
  raid.member_failed(2);
  EXPECT_TRUE(raid.degraded());
  bool rebuilt = false;
  raid.reconstruct(2, *rig.nodes[5], [&] { rebuilt = true; },
                   /*rebuild_bytes_per_member=*/512 * 1024);
  rig.engine.run();
  EXPECT_TRUE(rebuilt);
  EXPECT_FALSE(raid.degraded());
  EXPECT_GT(rig.nodes[5]->disk().writes(), 0u);  // spare holds rebuilt data
  // Reads of the replaced member now hit the spare, not reconstruction.
  const auto degraded_before = raid.stats().degraded_reads;
  bool done = false;
  raid.read(0, 0, 32 * 1024, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(raid.stats().degraded_reads, degraded_before);
}

TEST(StripeGroups, SegmentSizedWritesAreFullStripePerGroup) {
  Rig rig(13);  // node 0 drives, 1-12 = three groups of four
  RaidParams p;
  p.level = Level::kRaid5;
  p.stripe_unit = 8192;
  const std::uint64_t band = 3 * 8192;  // one row of a 4-member group
  StripeGroupArray groups(*rig.rpc, rig.members(1, 12), p, 4, band);
  EXPECT_EQ(groups.group_count(), 3u);
  int done = 0;
  // Nine band-aligned, band-sized writes rotate across the groups.
  for (std::uint64_t k = 0; k < 9; ++k) {
    groups.write(0, k * band, static_cast<std::uint32_t>(band),
                 [&] { ++done; });
  }
  rig.engine.run();
  EXPECT_EQ(done, 9);
  const RaidStats s = groups.stats();
  EXPECT_GT(s.full_stripe_writes, 0u);
  EXPECT_EQ(s.parity_updates, 0u);  // no read-modify-write anywhere
  // Load was spread: every group wrote something.
  for (std::size_t g = 0; g < 3; ++g) {
    EXPECT_GT(groups.group(g).stats().writes, 0u) << g;
  }
}

TEST(StripeGroups, ReadBackSpanningBandsCompletes) {
  Rig rig(9);
  RaidParams p;
  p.level = Level::kRaid5;
  p.stripe_unit = 8192;
  StripeGroupArray groups(*rig.rpc, rig.members(1, 8), p, 4,
                          /*band_bytes=*/3 * 8192);
  bool done = false;
  // A range crossing several bands (and therefore several groups).
  groups.write(0, 0, 10 * 8192, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
  done = false;
  groups.read(0, 8192, 8 * 8192, [&] { done = true; });
  rig.engine.run();
  EXPECT_TRUE(done);
}

TEST(StripeGroups, FailureDegradesOneGroupOnly) {
  Rig rig(9);
  RaidParams p;
  p.level = Level::kRaid5;
  StripeGroupArray groups(*rig.rpc, rig.members(1, 8), p, 4,
                          /*band_bytes=*/3 * 32 * 1024);
  rig.nodes[2]->crash();   // a member of group 0
  groups.member_failed(2);
  EXPECT_TRUE(groups.degraded());
  EXPECT_TRUE(groups.group(0).degraded());
  EXPECT_FALSE(groups.group(1).degraded());
  // Both groups still serve reads (group 0 via reconstruction).
  int done = 0;
  groups.read(0, 0, 32 * 1024, [&] { ++done; });                  // group 0
  groups.read(0, 3 * 32 * 1024, 32 * 1024, [&] { ++done; });      // group 1
  rig.engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(groups.group(0).stats().degraded_reads, 0u);
}

TEST(Raid, ThereIsNoCentralHostToLose) {
  // The paper: "if one workstation in the NOW crashes, any other can take
  // its place in controlling the RAID."  Drive the array from two
  // different clients; both succeed.
  Rig rig(6);
  RaidParams p;
  p.level = Level::kRaid5;
  SoftwareRaid raid(*rig.rpc, rig.members(1, 4), p);
  bool a = false, b = false;
  raid.read(0, 0, 64 * 1024, [&] { a = true; });
  raid.read(5, 0, 64 * 1024, [&] { b = true; });
  rig.engine.run();
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace now::raid
