// Property-based tests: invariants checked across parameter sweeps
// (TEST_P / INSTANTIATE_TEST_SUITE_P) rather than single examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "coopcache/coopcache.hpp"
#include "coopcache/lru.hpp"
#include "core/cluster.hpp"
#include "glunix/overlay_sim.hpp"
#include "glunix/spmd.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "proto/tcp.hpp"
#include "raid/raid.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "trace/fs_trace.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/usage_trace.hpp"
#include "xfs/log.hpp"
#include "xfs/xfs.hpp"

namespace now {
namespace {

// ---------------------------------------------------------------------
// Engine determinism: an arbitrary self-scheduling workload dispatches the
// identical event sequence on every run with the same seed.
class EngineDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<sim::SimTime> run_chaotic_workload(std::uint64_t seed) {
  sim::Engine eng;
  sim::Pcg32 rng(seed);
  std::vector<sim::SimTime> dispatch_times;
  std::function<void(int)> spawn = [&](int depth) {
    dispatch_times.push_back(eng.now());
    if (depth == 0) return;
    const int children = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < children; ++i) {
      const auto delay = static_cast<sim::Duration>(rng.next_below(1000));
      eng.schedule_in(delay, [&spawn, depth] { spawn(depth - 1); });
    }
    // Sometimes schedule-and-cancel, exercising tombstones.
    if (rng.bernoulli(0.3)) {
      const auto id = eng.schedule_in(10, [] { FAIL(); });
      eng.cancel(id);
    }
  };
  eng.schedule_at(0, [&spawn] { spawn(6); });
  eng.run();
  return dispatch_times;
}

TEST_P(EngineDeterminism, IdenticalDispatchSequence) {
  const auto a = run_chaotic_workload(GetParam());
  const auto b = run_chaotic_workload(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------------------------------------------------------------------
// LRU vs a naive reference model under random operation streams.
class LruModelCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(LruModelCheck, MatchesReferenceModel) {
  const auto [capacity, seed] = GetParam();
  coopcache::LruCache cache(capacity);
  std::vector<std::uint64_t> model;  // front = MRU
  sim::Pcg32 rng(static_cast<std::uint64_t>(seed));

  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t key = rng.next_below(24);
    const auto mit = std::find(model.begin(), model.end(), key);
    switch (rng.next_below(3)) {
      case 0: {  // insert
        std::uint64_t victim = 0;
        const bool evicted = cache.insert(key, &victim);
        if (mit != model.end()) {
          model.erase(mit);
          model.insert(model.begin(), key);
          EXPECT_FALSE(evicted);
        } else {
          if (model.size() >= capacity && capacity > 0) {
            EXPECT_TRUE(evicted);
            EXPECT_EQ(victim, model.back());
            model.pop_back();
          } else {
            EXPECT_FALSE(evicted);
          }
          if (capacity > 0) model.insert(model.begin(), key);
        }
        break;
      }
      case 1: {  // touch
        const bool hit = cache.touch(key);
        EXPECT_EQ(hit, mit != model.end());
        if (mit != model.end()) {
          model.erase(mit);
          model.insert(model.begin(), key);
        }
        break;
      }
      case 2: {  // erase
        const bool had = cache.erase(key);
        EXPECT_EQ(had, mit != model.end());
        if (mit != model.end()) model.erase(mit);
        break;
      }
    }
    ASSERT_EQ(cache.size(), model.size());
    for (const std::uint64_t k : model) {
      ASSERT_TRUE(cache.contains(k)) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndSeed, LruModelCheck,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8, 16),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Active Messages: exactly-once, in-order handling per pair, across loss
// rates — the go-back-N + epoch machinery's core contract.
class AmLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(AmLossSweep, ExactlyOnceAndInOrder) {
  const double loss = GetParam();
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::fddi_medusa());
  proto::NicMux mux(fabric);
  proto::AmParams ap;
  ap.loss_probability = loss;
  ap.retry_timeout = 2 * sim::kMillisecond;
  ap.window = 8;
  proto::AmLayer am(mux, ap, /*seed=*/17);
  os::Node n0(eng, 0, os::NodeParams{});
  os::Node n1(eng, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  const auto e0 = am.create_endpoint(n0, proto::AmLayer::Mode::kInterrupt);
  const auto e1 = am.create_endpoint(n1, proto::AmLayer::Mode::kInterrupt);
  std::vector<int> received;
  am.register_handler(e1, 1, [&](const proto::AmMessage& m) {
    received.push_back(std::any_cast<int>(m.payload));
  });
  const int kMessages = 120;
  for (int i = 0; i < kMessages; ++i) am.send(e0, e1, 1, 64, i);
  eng.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
  if (loss > 0) {
    EXPECT_GT(am.stats().retransmits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, AmLossSweep,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3));

// ---------------------------------------------------------------------
// Software RAID: arbitrary (offset, size) extents complete, on both
// levels, healthy and degraded.
struct RaidCase {
  int members;
  raid::Level level;
  bool degraded;
};

class RaidExtents : public ::testing::TestWithParam<RaidCase> {};

TEST_P(RaidExtents, RandomExtentsAlwaysComplete) {
  const RaidCase tc = GetParam();
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::myrinet());
  proto::NicMux mux(fabric);
  proto::AmLayer am(mux, proto::AmParams{});
  proto::RpcLayer rpc(am);
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<os::Node*> members;
  for (int i = 0; i <= tc.members; ++i) {
    nodes.push_back(std::make_unique<os::Node>(
        eng, static_cast<net::NodeId>(i), os::NodeParams{}));
    mux.attach_node(*nodes.back());
    rpc.bind(*nodes.back());
    raid::install_storage_service(rpc, *nodes.back());
    if (i > 0) members.push_back(nodes.back().get());
  }
  raid::RaidParams rp;
  rp.level = tc.level;
  raid::SoftwareRaid raid(rpc, members, rp);
  if (tc.degraded) {
    nodes[2]->crash();
    raid.member_failed(2);
  }
  sim::Pcg32 rng(tc.members * 100 + (tc.degraded ? 1 : 0));
  int completions = 0;
  const int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t offset = rng.next_below(1 << 20);
    const std::uint32_t bytes = 1 + rng.next_below(256 * 1024);
    if (!tc.degraded && rng.bernoulli(0.5)) {
      raid.write(0, offset, bytes, [&] { ++completions; });
    } else {
      raid.read(0, offset, bytes, [&] { ++completions; });
    }
  }
  eng.run();
  EXPECT_EQ(completions, kOps);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RaidExtents,
    ::testing::Values(RaidCase{3, raid::Level::kRaid0, false},
                      RaidCase{8, raid::Level::kRaid0, false},
                      RaidCase{3, raid::Level::kRaid5, false},
                      RaidCase{8, raid::Level::kRaid5, false},
                      RaidCase{4, raid::Level::kRaid5, true},
                      RaidCase{8, raid::Level::kRaid5, true}));

// ---------------------------------------------------------------------
// xFS coherence: after an arbitrary interleaving of reads/writes/syncs,
// at most one dirty holder exists per block and the directory matches.
class XfsCoherence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XfsCoherence, SingleWriterInvariantSurvivesChaos) {
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::atm_155mbps());
  proto::NicMux mux(fabric);
  proto::AmLayer am(mux, proto::AmParams{});
  proto::RpcLayer rpc(am);
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<os::Node*> members;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(std::make_unique<os::Node>(
        eng, static_cast<net::NodeId>(i), os::NodeParams{}));
    mux.attach_node(*nodes.back());
    rpc.bind(*nodes.back());
    raid::install_storage_service(rpc, *nodes.back());
    members.push_back(nodes.back().get());
  }
  xfs::XfsParams xp;
  xp.client_cache_blocks = 16;
  xp.segment_blocks = 5;
  raid::RaidParams rp;
  rp.level = raid::Level::kRaid5;
  rp.stripe_unit = xp.block_bytes;
  raid::SoftwareRaid storage(rpc, members, rp);
  xfs::LogStore log(storage, xp.segment_blocks, xp.block_bytes);
  xfs::Xfs fs(rpc, log, members, xp);
  fs.start();

  sim::Pcg32 rng(GetParam());
  int done = 0;
  for (int op = 0; op < 400; ++op) {
    const auto c = rng.next_below(6);
    const xfs::BlockId b = rng.next_below(60);
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        fs.read(c, b, [&] { ++done; });
        break;
      case 2:
        fs.write(c, b, [&] { ++done; });
        break;
      case 3:
        fs.sync(c, [&] { ++done; });
        break;
    }
    // Quiesce between bursts occasionally so invariants are checkable at
    // stable points (mid-flight transfers legitimately overlap).
    if (op % 40 == 39) {
      eng.run();
      EXPECT_TRUE(fs.coherence_invariant_holds()) << "after op " << op;
    }
  }
  eng.run();
  EXPECT_EQ(done, 400);
  EXPECT_TRUE(fs.coherence_invariant_holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XfsCoherence,
                         ::testing::Values(3, 11, 29, 63));

// ---------------------------------------------------------------------
// Cooperative caching: the directory mirrors the caches exactly, for every
// policy, throughout a trace replay.
class CoopDirectory
    : public ::testing::TestWithParam<coopcache::Policy> {};

TEST_P(CoopDirectory, StaysConsistentThroughReplay) {
  trace::FsWorkloadParams wp;
  wp.clients = 8;
  wp.accesses_per_client = 4'000;
  wp.shared_blocks = 1'024;
  wp.private_blocks = 512;
  const auto accesses = trace::generate_fs_trace(wp);
  coopcache::CoopCacheConfig cfg;
  cfg.clients = wp.clients;
  cfg.client_cache_blocks = 64;
  cfg.server_cache_blocks = 256;
  cfg.policy = GetParam();
  coopcache::CoopCacheSim sim(cfg);
  std::size_t i = 0;
  for (const auto& a : accesses) {
    sim.access(a.client, a.block, a.is_write);
    if (++i % 500 == 0) {
      ASSERT_TRUE(sim.directory_consistent()) << "at access " << i;
    }
  }
  EXPECT_TRUE(sim.directory_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CoopDirectory,
    ::testing::Values(coopcache::Policy::kClientServer,
                      coopcache::Policy::kGreedyForwarding,
                      coopcache::Policy::kCentrallyCoordinated,
                      coopcache::Policy::kNChance));

// ---------------------------------------------------------------------
// Overlay study: the execution-dilation slowdown can never meaningfully
// drop below 1 (the NOW cannot beat dedicated execution of the same jobs),
// for any seed and cluster size.
struct OverlayCase {
  std::uint64_t seed;
  std::uint32_t workstations;
};

class OverlayBounds : public ::testing::TestWithParam<OverlayCase> {};

TEST_P(OverlayBounds, SlowdownIsAtLeastOne) {
  const OverlayCase tc = GetParam();
  trace::UsageParams up;
  up.workstations = tc.workstations;
  up.duration = 6 * sim::kHour;
  up.seed = tc.seed;
  const trace::UsageTrace usage(up);
  trace::ParallelJobParams jp;
  jp.duration = 6 * sim::kHour;
  jp.seed = tc.seed + 1;
  const auto jobs = trace::generate_parallel_jobs(jp);
  glunix::OverlayParams op;
  op.workstations = tc.workstations;
  const auto r = glunix::simulate_overlay(usage, jobs, op);
  if (r.jobs_completed == jobs.size()) {
    EXPECT_GE(r.workload_slowdown, 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, OverlayBounds,
    ::testing::Values(OverlayCase{1, 48}, OverlayCase{2, 64},
                      OverlayCase{3, 64}, OverlayCase{4, 96},
                      OverlayCase{5, 128}));

// ---------------------------------------------------------------------
// TCP model: random message sizes arrive exactly once, in order, per
// connection, across MTUs and window sizes.
struct TcpCase {
  std::uint32_t mtu;
  std::uint32_t window;
};

class TcpDelivery : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpDelivery, ExactlyOnceInOrderAnySizes) {
  const TcpCase tc = GetParam();
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::atm_155mbps());
  proto::NicMux mux(fabric);
  os::Node n0(eng, 0, os::NodeParams{});
  os::Node n1(eng, 1, os::NodeParams{});
  mux.attach_node(n0);
  mux.attach_node(n1);
  proto::TcpParams tp;
  tp.mtu_bytes = tc.mtu;
  tp.window_bytes = tc.window;
  proto::TcpLayer tcp(mux, tp);

  std::vector<int> received;
  tcp.listen(1, 80, [&](proto::TcpMessage&& m) {
    received.push_back(std::any_cast<int>(m.payload));
  });
  sim::Pcg32 rng(5);
  const int kMessages = 60;
  for (int i = 0; i < kMessages; ++i) {
    const std::uint32_t bytes = 1 + rng.next_below(40'000);
    tcp.send(0, 9, 1, 80, bytes, i);
  }
  eng.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MtuAndWindow, TcpDelivery,
    ::testing::Values(TcpCase{1500, 64 * 1024}, TcpCase{1500, 4 * 1024},
                      TcpCase{9180, 64 * 1024}, TcpCase{9180, 16 * 1024},
                      TcpCase{512, 2 * 1024}));

// ---------------------------------------------------------------------
// Failure isolation: "If a workstation fails in our model, it only
// affects the programs using that CPU; ... programs running on other CPUs
// continue unaffected."  Two gangs on disjoint nodes; kill one gang's
// node; the other finishes normally.
class FailureIsolation : public ::testing::TestWithParam<int> {};

TEST_P(FailureIsolation, CrashOnlyKillsItsOwnPrograms) {
  sim::Engine eng;
  net::SwitchedNetwork fabric(eng, net::cm5_fabric());
  proto::NicMux mux(fabric);
  proto::AmParams ap;
  ap.costs = proto::am_cm5();
  proto::AmLayer am(mux, ap);
  std::vector<std::unique_ptr<os::Node>> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<os::Node>(
        eng, static_cast<net::NodeId>(i), os::NodeParams{}));
    mux.attach_node(*nodes.back());
  }
  std::vector<os::Node*> half_a{nodes[0].get(), nodes[1].get(),
                                nodes[2].get(), nodes[3].get()};
  std::vector<os::Node*> half_b{nodes[4].get(), nodes[5].get(),
                                nodes[6].get(), nodes[7].get()};
  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kEm3d;
  sp.iterations = 25;
  sp.compute_per_iteration = 10 * sim::kMillisecond;
  glunix::SpmdApp doomed(am, half_a, sp, nullptr);
  sim::Duration b_elapsed = 0;
  glunix::SpmdApp survivor(am, half_b, sp,
                           [&](sim::Duration d) { b_elapsed = d; });
  doomed.start();
  survivor.start();
  const int victim = GetParam();
  eng.schedule_at(50 * sim::kMillisecond,
                  [&nodes, victim] { nodes[victim]->crash(); });
  eng.run_until(10 * 60 * sim::kSecond);
  EXPECT_FALSE(doomed.finished());   // lost a rank, cannot complete
  EXPECT_TRUE(survivor.finished());  // never noticed
  EXPECT_GT(b_elapsed, 25 * 10 * sim::kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Victims, FailureIsolation,
                         ::testing::Values(0, 2, 3));

// ---------------------------------------------------------------------
// Whole-cluster determinism: identical seeds produce bit-identical
// behaviour through every layer at once.
class ClusterDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

struct ClusterFingerprint {
  std::uint64_t fs_peer_fetches = 0;
  std::uint64_t fs_segments = 0;
  std::uint64_t glunix_migrations = 0;
  std::uint64_t glunix_completed = 0;
  std::uint64_t events = 0;
  sim::SimTime final_time = 0;
  bool operator==(const ClusterFingerprint&) const = default;
};

ClusterFingerprint run_cluster_workload(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 32;
  cfg.seed = seed;
  Cluster c(cfg);
  sim::Pcg32 rng(seed);

  for (int j = 0; j < 3; ++j) {
    c.glunix().run_remote(sim::from_sec(rng.uniform(10, 60)), 8ull << 20,
                          [](net::NodeId) {});
  }
  for (int op = 0; op < 300; ++op) {
    const auto node = rng.next_below(8);
    const xfs::BlockId b = rng.next_below(100);
    if (rng.bernoulli(0.3)) {
      c.fs().write(node, b, [] {});
    } else {
      c.fs().read(node, b, [] {});
    }
  }
  // Some console noise.
  for (sim::SimTime t = 0; t < 60 * sim::kSecond; t += 7 * sim::kSecond) {
    const auto n = rng.next_below(8);
    c.engine().schedule_at(t, [&c, n] { c.node(n).user_activity(); });
  }
  c.run_until(5 * sim::kMinute);

  ClusterFingerprint fp;
  fp.fs_peer_fetches = c.fs().stats().peer_fetches;
  fp.fs_segments = c.fs().stats().segments_flushed;
  fp.glunix_migrations = c.glunix().stats().migrations;
  fp.glunix_completed = c.glunix().stats().completed;
  fp.events = c.engine().dispatched();
  fp.final_time = c.engine().now();
  return fp;
}

TEST_P(ClusterDeterminism, IdenticalRunsProduceIdenticalFingerprints) {
  const auto a = run_cluster_workload(GetParam());
  const auto b = run_cluster_workload(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterDeterminism,
                         ::testing::Values(1, 2, 99));

TEST(ClusterSeeds, DifferentSeedsProduceDifferentBehaviour) {
  const auto a = run_cluster_workload(5);
  const auto b = run_cluster_workload(6);
  EXPECT_FALSE(a == b);  // the seed genuinely steers the run
}

// ---------------------------------------------------------------------
// Cross-module validation: xFS's cooperative caching should show the same
// qualitative hierarchy as the dedicated coopcache simulator on the same
// trace — local hits first, then peer memory, with disk a distant third.
TEST(CrossValidation, XfsActsAsACooperativeCache) {
  trace::FsWorkloadParams wp;
  wp.clients = 8;
  wp.accesses_per_client = 1'500;
  wp.shared_blocks = 512;
  wp.private_blocks = 128;
  wp.zipf_shared = 1.1;
  const auto accesses = trace::generate_fs_trace(wp);

  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 96;
  Cluster c(cfg);
  for (const auto& a : accesses) {
    if (a.is_write) {
      c.fs().write(a.client, a.block, [] {});
    } else {
      c.fs().read(a.client, a.block, [] {});
    }
    c.run();
  }
  const auto& s = c.fs().stats();
  // Hierarchy: peers served many misses, the log far fewer — the
  // cooperative-cache shape Table 3 quantifies.
  EXPECT_GT(s.local_hits, s.peer_fetches);
  EXPECT_GT(s.peer_fetches, s.log_reads);
  EXPECT_TRUE(c.fs().coherence_invariant_holds());
}

// ---------------------------------------------------------------------
// Statistics: Summary::merge is order-insensitive and matches pooling.
class SummaryMerge : public ::testing::TestWithParam<int> {};

TEST_P(SummaryMerge, MergeEqualsPooled) {
  sim::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  sim::Summary pooled;
  std::vector<sim::Summary> parts(4);
  for (int i = 0; i < 2'000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    pooled.add(x);
    parts[rng.next_below(4)].add(x);
  }
  sim::Summary merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), pooled.count());
  EXPECT_NEAR(merged.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), pooled.min());
  EXPECT_DOUBLE_EQ(merged.max(), pooled.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryMerge, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace now
