// Unit tests for the discrete-event engine, RNG, statistics, and the
// structured log's NOW_LOG filter + pluggable sink.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace now::sim {
namespace {

using namespace now::sim::literals;

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(5, [&] { order.push_back(1); });
  eng.schedule_at(5, [&] { order.push_back(2); });
  eng.schedule_at(5, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByPriorityBeforeInsertion) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(5, [&] { order.push_back(1); }, /*priority=*/1);
  eng.schedule_at(5, [&] { order.push_back(2); }, /*priority=*/0);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int fired = 0;
  eng.schedule_in(10, [&] {
    eng.schedule_in(10, [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 20);
}

TEST(Engine, CancelPreventsDispatch) {
  Engine eng;
  int fired = 0;
  const EventId id = eng.schedule_in(10, [&] { ++fired; });
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));  // double-cancel is a no-op
  eng.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] { ++fired; });
  eng.schedule_at(20, [&] { ++fired; });
  eng.schedule_at(30, [&] { ++fired; });
  eng.run_until(20);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_EQ(eng.now(), 20);
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Engine eng;
  eng.run_until(5 * kSecond);
  EXPECT_EQ(eng.now(), 5 * kSecond);
}

TEST(Engine, StopHaltsRun) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(10, [&] {
    ++fired;
    eng.stop();
  });
  eng.schedule_at(20, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PastEventsClampToNow) {
  Engine eng;
  eng.schedule_at(100, [] {});
  eng.run();
  SimTime fired_at = -1;
  eng.schedule_at(50, [&] { fired_at = eng.now(); });  // in the past
  eng.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Engine, CancelFromWithinAHandler) {
  Engine eng;
  int fired = 0;
  EventId later = 0;
  eng.schedule_at(10, [&] {
    // Cancel an event that is already in the queue for the same instant
    // and one in the future.
    eng.cancel(later);
  });
  later = eng.schedule_at(20, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, HandlerSchedulingAtCurrentInstantRunsThisPass) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(10, [&] {
    order.push_back(1);
    eng.schedule_at(10, [&] { order.push_back(2); });  // same instant
  });
  eng.schedule_at(11, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, DispatchedCounts) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.schedule_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.dispatched(), 7u);
}

TEST(Engine, StaleCancelAfterSlotReuseIsNoOp) {
  Engine eng;
  int fired = 0;
  // Cancel releases the pool slot; the next schedule reuses it under a fresh
  // generation.  The stale id must not be able to kill the new occupant.
  const EventId stale = eng.schedule_at(10, [&] { fired += 100; });
  EXPECT_TRUE(eng.cancel(stale));
  const EventId fresh = eng.schedule_at(10, [&] { ++fired; });
  EXPECT_FALSE(eng.cancel(stale));  // generation mismatch: no-op
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(eng.cancel(fresh));  // already fired
}

TEST(Engine, StaleIdStaysStaleAcrossManyReuses) {
  Engine eng;
  const EventId stale = eng.schedule_at(1, [] {});
  eng.cancel(stale);
  int fired = 0;
  for (int i = 0; i < 1'000; ++i) {
    eng.schedule_at(i, [&] { ++fired; });
    EXPECT_FALSE(eng.cancel(stale));
  }
  eng.run();
  EXPECT_EQ(fired, 1'000);
}

TEST(Engine, TieBreakOrderIsDeterministicAcrossRuns) {
  // Two independent engines fed the same scrambled same-time schedule must
  // dispatch in the identical order (time, then priority, then insertion).
  const auto record = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
      const SimTime t = (i * 7) % 3;          // times 0..2, scrambled
      const int prio = (i * 5) % 4 - 2;       // priorities -2..1, scrambled
      eng.schedule_at(t, [&order, i] { order.push_back(i); }, prio);
    }
    eng.run();
    return order;
  };
  const std::vector<int> first = record();
  const std::vector<int> second = record();
  ASSERT_EQ(first.size(), 64u);
  EXPECT_EQ(first, second);
}

TEST(Engine, MillionEventStress) {
  constexpr int kSeeds = 1'000;
  constexpr int kChainLength = 1'000;  // 1M dispatches total
  Engine eng;
  std::uint64_t fired = 0;
  // kSeeds self-rescheduling chains with interleaved deadlines, plus a
  // cancelled twin per seed to exercise slot reuse under load.
  std::function<void(int, int)> hop = [&](int chain, int depth) {
    ++fired;
    if (depth < kChainLength) {
      eng.schedule_at(eng.now() + kSeeds, [&hop, chain, depth] {
        hop(chain, depth + 1);
      });
    }
  };
  for (int c = 0; c < kSeeds; ++c) {
    eng.schedule_at(c, [&hop, c] { hop(c, 1); });
    eng.cancel(eng.schedule_at(c, [] {}));
  }
  eng.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kSeeds) * kChainLength);
  EXPECT_EQ(eng.dispatched(), fired);
  // Chain c hops at times c, c + kSeeds, ..., c + (kChainLength-1)*kSeeds;
  // the last event overall is chain kSeeds-1 at depth kChainLength.
  EXPECT_EQ(eng.now(), (kSeeds - 1) + static_cast<SimTime>(kSeeds) *
                                          (kChainLength - 1));
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, RescheduleMovesPendingEvent) {
  Engine eng;
  SimTime fired_at = -1;
  EventId id = eng.schedule_at(10, [&] { fired_at = eng.now(); });
  id = eng.reschedule(id, 50);
  ASSERT_NE(id, 0u);
  eng.run();
  EXPECT_EQ(fired_at, 50);
  EXPECT_EQ(eng.now(), 50);
}

TEST(Engine, RescheduleInvalidatesOldId) {
  Engine eng;
  int fired = 0;
  const EventId old_id = eng.schedule_at(10, [&] { ++fired; });
  const EventId new_id = eng.reschedule(old_id, 20);
  ASSERT_NE(new_id, 0u);
  EXPECT_FALSE(eng.cancel(old_id));  // superseded
  EXPECT_TRUE(eng.cancel(new_id));
  eng.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RescheduleOfFiredOrCancelledEventFails) {
  Engine eng;
  const EventId fired_id = eng.schedule_at(1, [] {});
  eng.run();
  EXPECT_EQ(eng.reschedule(fired_id, 10), 0u);
  const EventId cancelled = eng.schedule_at(5, [] {});
  eng.cancel(cancelled);
  EXPECT_EQ(eng.reschedule_in(cancelled, 10), 0u);
}

TEST(Engine, RescheduleCanPullAnEventEarlier) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(20, [&] { order.push_back(1); });
  EventId id = eng.schedule_at(30, [&] { order.push_back(2); });
  eng.schedule_at(5, [&, id] { eng.reschedule(id, 10); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(eng.now(), 20);
}

TEST(Engine, RunUntilLeavesClockAtLastEventWhenStopped) {
  Engine eng;
  eng.schedule_at(10, [&] { eng.stop(); });
  eng.schedule_at(20, [] {});
  const std::uint64_t n = eng.run_until(100);
  EXPECT_EQ(n, 1u);
  // A stopped run must not jump the clock forward to the deadline.
  EXPECT_EQ(eng.now(), 10);
  eng.run_until(100);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Time, ConversionRoundTrip) {
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_EQ(from_ms(1.0), kMillisecond);
  EXPECT_EQ(from_sec(1.0), kSecond);
  EXPECT_DOUBLE_EQ(to_us(123 * kMicrosecond), 123.0);
  EXPECT_DOUBLE_EQ(to_ms(250 * kMicrosecond), 0.25);
  EXPECT_DOUBLE_EQ(to_sec(1500 * kMillisecond), 1.5);
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(format_duration(500), "500 ns");
  EXPECT_EQ(format_duration(12 * kMicrosecond + 340), "12.34 us");
  EXPECT_EQ(format_duration(3 * kSecond), "3.00 s");
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInRange) {
  Pcg32 r(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Pcg32, NextBelowUnbiasedCoverage) {
  Pcg32 r(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Pcg32, ExponentialMeanConverges) {
  Pcg32 r(5);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(r.exponential(10.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.5);
}

TEST(Pcg32, ParetoStaysInBounds) {
  Pcg32 r(6);
  for (int i = 0; i < 5000; ++i) {
    const double x = r.pareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0 + 1e-9);
  }
}

TEST(Pcg32, NormalMoments) {
  Pcg32 r(7);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Pcg32, UniformIntInclusiveBounds) {
  Pcg32 r(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Zipf, SkewsTowardLowRanks) {
  Pcg32 r(9);
  ZipfSampler z(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(r)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[10]);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Pcg32 r(10);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(r)];
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, MergeMatchesCombined) {
  Summary a, b, all;
  Pcg32 r(11);
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal(0, 1);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = r.normal(10, 3);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Histogram, PercentilesBracketTrueValues) {
  Histogram h(1.0, 1.05);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(0.5), 500, 500 * 0.06);
  EXPECT_NEAR(h.percentile(0.99), 990, 990 * 0.06);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, ExtremeQuantilesBracketMinAndMax) {
  Histogram h(1.0, 1.05);
  for (double x : {2.0, 5.0, 20.0, 80.0, 300.0}) h.add(x);
  // q=0 is the smallest sample's bin upper bound; q=1 the largest's.
  EXPECT_GE(h.percentile(0.0), 2.0);
  EXPECT_LE(h.percentile(0.0), 2.0 * 1.05);
  EXPECT_GE(h.percentile(1.0), 300.0);
  EXPECT_LE(h.percentile(1.0), 300.0 * 1.05);
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Histogram, UnderflowBinResolvesToLo) {
  Histogram h(10.0, 1.05);
  for (int i = 0; i < 9; ++i) h.add(0.5);  // all below lo
  h.add(1000.0);
  EXPECT_EQ(h.count(), 10u);
  // 90 % of the mass is in the underflow bin: low quantiles report `lo`.
  EXPECT_EQ(h.percentile(0.0), 10.0);
  EXPECT_EQ(h.percentile(0.5), 10.0);
  EXPECT_GE(h.percentile(1.0), 1000.0);
  // The summary still sees the exact values.
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

// merge() is how per-lane latency shards combine at report time: bin
// counts are integers, so any grouping of the same samples must produce
// the identical histogram — the foundation of thread-count-invariant
// statistics.
TEST(Histogram, MergeEqualsSingleHistogramOverTheUnion) {
  Histogram whole(1.0, 1.05);
  Histogram a(1.0, 1.05), b(1.0, 1.05), c(1.0, 1.05);
  Pcg32 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.exponential(1.0 / 250.0) + 0.2;  // some underflow
    whole.add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), whole.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a(1.0, 1.05), empty(1.0, 1.05);
  a.add(3.0);
  a.add(70.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), 70.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.percentile(1.0), a.percentile(1.0));
}

TEST(Summary, MergeVarianceIsExact) {
  // Small integer samples so the expected moments are exact by hand:
  // {1,2,3} merged with {10,14} = {1,2,3,10,14}.
  Summary a, b, all;
  for (double x : {1.0, 2.0, 3.0}) { a.add(x); all.add(x); }
  for (double x : {10.0, 14.0}) { b.add(x); all.add(x); }
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 30.0);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 14.0);
  // Sample variance of {1,2,3,10,14} is 130/4 = 32.5, and the pairwise
  // merge must reproduce it to rounding, not just approximately.
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_NEAR(a.variance(), 32.5, 1e-12);
}

TEST(Summary, MergeWithEmptySides) {
  Summary empty1, empty2;
  empty1.merge(empty2);
  EXPECT_EQ(empty1.count(), 0u);
  EXPECT_EQ(empty1.mean(), 0.0);

  Summary s;
  s.add(3.0);
  s.add(5.0);
  Summary lhs_empty;
  lhs_empty.merge(s);  // empty.merge(nonempty) adopts the other side
  EXPECT_EQ(lhs_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs_empty.mean(), 4.0);

  Summary rhs_empty;
  s.merge(rhs_empty);  // nonempty.merge(empty) is a no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
}

TEST(Log, EnvFilterSetsGlobalAndPerComponentLevels) {
  setenv("NOW_LOG", "warn, net=trace, xfs=debug", 1);
  init_log_from_env();
  EXPECT_EQ(log_threshold("am"), LogLevel::kWarn);     // global fallback
  EXPECT_EQ(log_threshold("net"), LogLevel::kTrace);   // override
  EXPECT_EQ(log_threshold("xfs"), LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace, "net"));
  EXPECT_TRUE(log_enabled(LogLevel::kDebug, "xfs"));
  EXPECT_FALSE(log_enabled(LogLevel::kTrace, "xfs"));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo, "am"));

  setenv("NOW_LOG", "off", 1);
  init_log_from_env();
  clear_module_log_levels();
  EXPECT_FALSE(log_enabled(LogLevel::kError, "anything"));

  unsetenv("NOW_LOG");
  set_log_level(LogLevel::kWarn);  // restore the default for other tests
}

TEST(Log, SinkReceivesOnlyLinesPassingTheFilter) {
  std::vector<std::string> got;
  set_log_sink([&got](LogLevel, SimTime at, const std::string& component,
                      const std::string& message) {
    got.push_back(component + "@" + std::to_string(at) + ": " + message);
  });
  set_log_level(LogLevel::kInfo);
  LogStream(LogLevel::kInfo, 1'500'000, "xfs") << "takeover -> node " << 8;
  LogStream(LogLevel::kDebug, 2'000'000, "xfs") << "below threshold";
  set_log_sink(nullptr);  // restore the stderr printer
  set_log_level(LogLevel::kWarn);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "xfs@1500000: takeover -> node 8");
}

TEST(Log, FormatLineCarriesSimTimeLevelAndComponent) {
  const std::string line =
      format_log_line(LogLevel::kInfo, 12'345'000, "glunix", "node 3 down");
  EXPECT_NE(line.find("12.345"), std::string::npos);  // ms from ns
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("glunix: node 3 down"), std::string::npos);
}

}  // namespace
}  // namespace now::sim
