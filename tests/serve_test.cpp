// Tests for now::serve — arrival schedules (golden sequences), think-time
// distributions, the diurnal curve, SLO accounting on hand-computed
// latency sets, the serving workload end-to-end against real backends,
// the central server's cold restart, and --jobs invariance of a full
// serving sweep.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "exp/grid.hpp"
#include "exp/runner.hpp"
#include "serve/arrivals.hpp"
#include "serve/request_mix.hpp"
#include "serve/slo.hpp"
#include "serve/workload.hpp"
#include "xfs/central_server.hpp"

namespace now {
namespace {

// ---------------------------------------------------------------------------
// ClientPopulation: arrivals

// Golden sequences pin the arrival derivation forever: any change to the
// stream layout, the thinning loop, or the rounding silently reseeds
// every serving experiment in the repo, so it must be loud.  Values are
// nanosecond timestamps from seed 42, 4 clients, 2 req/s aggregate,
// 10 s horizon.
TEST(ClientPopulation, GoldenArrivalSequence) {
  serve::PopulationParams p;
  p.clients = 4;
  p.open_fraction = 1.0;
  p.offered_per_sec = 2.0;
  p.horizon = 10 * sim::kSecond;
  serve::ClientPopulation pop(p, 42);
  const std::vector<sim::SimTime> c0{901205343LL,  2803712043LL,
                                     2858971697LL, 4350025103LL,
                                     5351615006LL, 7935238555LL,
                                     8917817182LL};
  const std::vector<sim::SimTime> c1{3327153603LL, 4414105178LL,
                                     4467632664LL, 9193976802LL,
                                     9436048160LL};
  EXPECT_EQ(pop.arrivals(0), c0);
  EXPECT_EQ(pop.arrivals(1), c1);
}

TEST(ClientPopulation, GoldenArrivalSequenceDiurnal) {
  serve::PopulationParams p;
  p.clients = 4;
  p.open_fraction = 1.0;
  p.offered_per_sec = 2.0;
  p.horizon = 10 * sim::kSecond;
  p.diurnal.amplitude = 0.8;
  p.diurnal.period = 4 * sim::kSecond;
  serve::ClientPopulation pop(p, 42);
  const std::vector<sim::SimTime> c0{500669635LL,  1588317609LL,
                                     2416680613LL, 4408465864LL,
                                     4954342879LL, 5864745497LL,
                                     8020811666LL};
  EXPECT_EQ(pop.arrivals(0), c0);
}

TEST(ClientPopulation, ArrivalsAreCallOrderIndependent) {
  serve::PopulationParams p;
  p.clients = 8;
  p.offered_per_sec = 40.0;
  p.horizon = 5 * sim::kSecond;
  serve::ClientPopulation a(p, 7);
  serve::ClientPopulation b(p, 7);
  // a asks 0..7, b asks 7..0, twice: every answer must match.
  std::vector<std::vector<sim::SimTime>> fwd, rev(8);
  for (std::uint32_t c = 0; c < 8; ++c) fwd.push_back(a.arrivals(c));
  for (std::uint32_t c = 8; c-- > 0;) rev[c] = b.arrivals(c);
  EXPECT_EQ(fwd, std::vector<std::vector<sim::SimTime>>(rev));
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_EQ(a.arrivals(c), fwd[c]) << "re-materialization drifted";
  }
}

TEST(ClientPopulation, ArrivalsSortedAndInsideHorizon) {
  serve::PopulationParams p;
  p.clients = 4;
  p.offered_per_sec = 200.0;
  p.horizon = 2 * sim::kSecond;
  serve::ClientPopulation pop(p, 3);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < pop.clients(); ++c) {
    const auto a = pop.arrivals(c);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    for (const sim::SimTime t : a) EXPECT_LT(t, p.horizon);
    total += a.size();
  }
  // 200/s over 2 s => ~400 arrivals; Poisson, so allow a wide band.
  EXPECT_GT(total, 300u);
  EXPECT_LT(total, 500u);
}

TEST(ClientPopulation, OpenFractionSplitsThePopulation) {
  serve::PopulationParams p;
  p.clients = 10;
  p.open_fraction = 0.5;
  serve::ClientPopulation pop(p, 1);
  EXPECT_EQ(pop.open_clients(), 5u);
  EXPECT_TRUE(pop.is_open(0));
  EXPECT_TRUE(pop.is_open(4));
  EXPECT_FALSE(pop.is_open(5));
  EXPECT_TRUE(pop.arrivals(7).empty()) << "closed clients have no schedule";
}

// ---------------------------------------------------------------------------
// Streaming arrivals: lazy == materialized, merge order, bounded state

// The tentpole invariant: collecting every open client's lazy stream
// through the k-way merge yields exactly the per-client materialized
// schedules, interleaved in (time, client) order — for a mixed
// open/closed population under a diurnal curve.  If this drifts, the
// streaming path has silently reseeded the serving experiments.
TEST(MergedArrivals, MatchesMaterializedSchedules) {
  serve::PopulationParams p;
  p.clients = 8;
  p.open_fraction = 0.5;  // clients 0..3 open, 4..7 closed
  p.offered_per_sec = 120.0;
  p.horizon = 3 * sim::kSecond;
  p.diurnal.amplitude = 0.7;
  p.diurnal.period = 2 * sim::kSecond;
  serve::ClientPopulation pop(p, 91);

  std::vector<serve::Arrival> expected;
  for (std::uint32_t c = 0; c < pop.clients(); ++c) {
    for (const sim::SimTime t : pop.arrivals(c)) expected.push_back({t, c});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const serve::Arrival& a, const serve::Arrival& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.client < b.client;
                   });
  ASSERT_GT(expected.size(), 100u);

  serve::MergedArrivals merged(pop);
  EXPECT_EQ(merged.streams(), pop.open_clients());
  std::vector<serve::Arrival> got;
  while (const auto a = merged.next()) got.push_back(*a);
  EXPECT_EQ(merged.streams(), 0u);
  EXPECT_EQ(got, expected);
}

TEST(MergedArrivals, MatchesMaterializedSchedulesUnderChurn) {
  serve::PopulationParams p;
  p.clients = 6;
  p.open_fraction = 1.0;
  p.offered_per_sec = 90.0;
  p.horizon = 4 * sim::kSecond;
  p.diurnal.amplitude = 0.5;
  p.diurnal.period = 2 * sim::kSecond;
  p.sessions.mean_on = 500 * sim::kMillisecond;
  p.sessions.mean_off = 300 * sim::kMillisecond;
  serve::ClientPopulation pop(p, 37);

  std::vector<serve::Arrival> expected;
  for (std::uint32_t c = 0; c < pop.clients(); ++c) {
    for (const sim::SimTime t : pop.arrivals(c)) expected.push_back({t, c});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const serve::Arrival& a, const serve::Arrival& b) {
                     return a.time != b.time ? a.time < b.time
                                             : a.client < b.client;
                   });
  ASSERT_GT(expected.size(), 30u);

  serve::MergedArrivals merged(pop);
  std::vector<serve::Arrival> got;
  while (const auto a = merged.next()) got.push_back(*a);
  EXPECT_EQ(got, expected);
}

// Enabling churn draws its session timeline from a *separate* RNG stream,
// so it may only remove arrivals — every surviving timestamp must appear,
// unmoved, in the churn-free schedule.
TEST(ClientPopulation, ChurnOnlyFiltersArrivals) {
  serve::PopulationParams p;
  p.clients = 4;
  p.offered_per_sec = 80.0;
  p.horizon = 5 * sim::kSecond;
  serve::ClientPopulation plain(p, 57);
  p.sessions.mean_on = sim::kSecond;
  p.sessions.mean_off = 700 * sim::kMillisecond;
  serve::ClientPopulation churned(p, 57);

  std::size_t kept = 0, dropped = 0;
  for (std::uint32_t c = 0; c < p.clients; ++c) {
    const auto base = plain.arrivals(c);
    const auto fil = churned.arrivals(c);
    EXPECT_LE(fil.size(), base.size());
    for (const sim::SimTime t : fil) {
      EXPECT_TRUE(std::binary_search(base.begin(), base.end(), t))
          << "churn moved an arrival instead of filtering";
    }
    kept += fil.size();
    dropped += base.size() - fil.size();
  }
  EXPECT_GT(kept, 0u) << "all sessions empty — churn params degenerate";
  EXPECT_GT(dropped, 0u) << "churn filtered nothing";
}

TEST(SessionTimeline, DisabledYieldsOneFullHorizonSession) {
  serve::PopulationParams p;
  p.clients = 2;
  p.horizon = 7 * sim::kSecond;
  serve::ClientPopulation pop(p, 3);
  serve::SessionTimeline tl = pop.sessions(1);
  const auto s = tl.next();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->login, 0);
  EXPECT_EQ(s->logout, p.horizon);
  EXPECT_FALSE(tl.next().has_value());
}

TEST(SessionTimeline, IntervalsAreOrderedDisjointAndReplayable) {
  serve::PopulationParams p;
  p.clients = 3;
  p.horizon = 20 * sim::kSecond;
  p.sessions.mean_on = sim::kSecond;
  p.sessions.mean_off = sim::kSecond;
  p.diurnal.amplitude = 0.6;
  p.diurnal.period = 5 * sim::kSecond;
  serve::ClientPopulation pop(p, 101);
  for (std::uint32_t c = 0; c < p.clients; ++c) {
    std::vector<serve::Session> a, b;
    serve::SessionTimeline t1 = pop.sessions(c);
    serve::SessionTimeline t2 = pop.sessions(c);
    while (const auto s = t1.next()) a.push_back(*s);
    while (const auto s = t2.next()) b.push_back(*s);
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].login, b[i].login) << "timeline is not replayable";
      EXPECT_EQ(a[i].logout, b[i].logout);
      EXPECT_LT(a[i].login, a[i].logout);
      EXPECT_LE(a[i].logout, p.horizon);
      if (i > 0) EXPECT_GE(a[i].login, a[i - 1].logout);
    }
  }
}

// 2048 streaming clients at building rates: the merge must hold its
// bounded O(clients) state (streams() never exceeds the population) and
// deliver a sane Poisson count in order.  This is the smoke test that the
// schedule is never materialized — at this rate a vector-of-vectors path
// would hold every arrival at once.
TEST(MergedArrivals, TwoThousandClientStreamStaysBounded) {
  serve::PopulationParams p;
  p.clients = 2048;
  p.offered_per_sec = 20'000.0;
  p.horizon = 2 * sim::kSecond;
  serve::ClientPopulation pop(p, 77);
  serve::MergedArrivals merged(pop);
  EXPECT_EQ(merged.streams(), 2048u);

  std::uint64_t n = 0;
  sim::SimTime prev = 0;
  while (const auto a = merged.next()) {
    EXPECT_GE(a->time, prev);
    EXPECT_LT(a->time, p.horizon);
    EXPECT_LT(a->client, 2048u);
    EXPECT_LE(merged.streams(), 2048u);
    prev = a->time;
    ++n;
  }
  // 20k/s over 2 s => ~40k arrivals.
  EXPECT_GT(n, 38'000u);
  EXPECT_LT(n, 42'000u);
}

// ---------------------------------------------------------------------------
// Think times

TEST(ClientPopulation, ThinkTimeMeansMatchAcrossDistributions) {
  for (const serve::ThinkDist d :
       {serve::ThinkDist::kExponential, serve::ThinkDist::kPareto,
        serve::ThinkDist::kLognormal}) {
    serve::PopulationParams p;
    p.clients = 1;
    p.open_fraction = 0.0;
    p.think = d;
    p.think_mean_ms = 50.0;
    serve::ClientPopulation pop(p, 11);
    double sum_ms = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
      const sim::Duration t = pop.think_time(0);
      EXPECT_GE(t, 1);
      sum_ms += sim::to_ms(t);
    }
    // Heavy tails converge slowly; 20 % is tight enough to catch a wrong
    // parameterization (they would be off by x2 or more).
    EXPECT_NEAR(sum_ms / n, 50.0, 10.0) << serve::to_string(d);
  }
}

TEST(ClientPopulation, ParetoIsHeavierTailedThanExponential) {
  serve::PopulationParams p;
  p.clients = 1;
  p.open_fraction = 0.0;
  p.think_mean_ms = 50.0;
  p.think = serve::ThinkDist::kExponential;
  serve::ClientPopulation expo(p, 5);
  p.think = serve::ThinkDist::kPareto;
  serve::ClientPopulation pareto(p, 5);
  double expo_max = 0, pareto_max = 0;
  for (int i = 0; i < 20'000; ++i) {
    expo_max = std::max(expo_max, sim::to_ms(expo.think_time(0)));
    pareto_max = std::max(pareto_max, sim::to_ms(pareto.think_time(0)));
  }
  EXPECT_GT(pareto_max, expo_max);
}

// ---------------------------------------------------------------------------
// DiurnalCurve

TEST(DiurnalCurve, FlatWithoutAmplitude) {
  serve::DiurnalCurve c;
  EXPECT_DOUBLE_EQ(c.multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(c.multiplier(7 * sim::kHour), 1.0);
  EXPECT_DOUBLE_EQ(c.peak(), 1.0);
}

TEST(DiurnalCurve, PeakBoundsTheMultiplier) {
  serve::DiurnalCurve c;
  c.amplitude = 0.6;
  c.period = 24 * sim::kHour;
  double lo = 1e9, hi = 0;
  for (int h = 0; h < 48; ++h) {
    const double m = c.multiplier(h * sim::kHour / 2);
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, c.peak() + 1e-12);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_NEAR(hi, 1.6, 1e-6);  // daytime peak
  EXPECT_NEAR(lo, 0.4, 1e-6);  // night trough
}

// ---------------------------------------------------------------------------
// RequestMix

TEST(RequestMix, WeightsShapeTheDraw) {
  serve::RequestClass a, b;
  a.name = "a";
  a.weight = 3.0;
  b.name = "b";
  b.weight = 1.0;
  serve::RequestMix mix({a, b}, 9);
  int hits_a = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (mix.pick_class(0) == 0) ++hits_a;
  }
  EXPECT_NEAR(static_cast<double>(hits_a) / n, 0.75, 0.03);
}

TEST(RequestMix, DrawsAreClientOrderIndependent) {
  serve::RequestClass a;
  a.name = "a";
  a.working_set = 100;
  serve::RequestMix m1({a}, 13);
  serve::RequestMix m2({a}, 13);
  // m1 touches client 0 first, m2 touches client 1 first: each client's
  // stream must not care who went first.
  std::vector<std::uint64_t> m1c0, m1c1, m2c0, m2c1;
  for (int i = 0; i < 50; ++i) m1c0.push_back(m1.pick_block(0, 0));
  for (int i = 0; i < 50; ++i) m1c1.push_back(m1.pick_block(0, 1));
  for (int i = 0; i < 50; ++i) m2c1.push_back(m2.pick_block(0, 1));
  for (int i = 0; i < 50; ++i) m2c0.push_back(m2.pick_block(0, 0));
  EXPECT_EQ(m1c0, m2c0);
  EXPECT_EQ(m1c1, m2c1);
  EXPECT_NE(m1c0, m1c1) << "clients share a stream";
}

// ---------------------------------------------------------------------------
// SloTracker

// Hand-computed: SLO 10 ms; successes at 1, 5, 9, 11, 20 ms and one
// backend failure at 2 ms.  Six completions, three SLO-meeting (1, 5, 9 —
// 11 and 20 are late, the failure can never meet it): attainment 1/2.
TEST(SloTracker, HandComputedAttainment) {
  serve::SloTracker slo("t");
  const std::size_t cls = slo.add_class("rpc", 10 * sim::kMillisecond);
  for (const int ms : {1, 5, 9, 11, 20}) {
    slo.record(cls, ms * sim::kMillisecond, true);
  }
  slo.record(cls, 2 * sim::kMillisecond, false);

  const serve::SloClassReport r = slo.report(cls, 2 * sim::kSecond);
  EXPECT_EQ(r.completed, 6u);
  EXPECT_EQ(r.ok, 5u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.slo_met, 3u);
  EXPECT_DOUBLE_EQ(r.attainment, 0.5);
  // goodput judges the interval: 3 SLO-meeting successes over 2 s.
  EXPECT_DOUBLE_EQ(r.goodput_per_sec, 1.5);
  // Latency stats come from a 2 %-bin histogram (exact mean, ~2 %
  // quantiles) with nearest-rank quantiles: rank floor(q*(n-1))+1, so on
  // these six samples {1, 2, 5, 9, 11, 20} p50 is the 3rd smallest (5 ms)
  // and p99/p999 the 5th (11 ms).
  EXPECT_NEAR(r.mean_ms, 8.0, 0.2);
  EXPECT_NEAR(r.p50_ms, 5.0, 0.15);
  EXPECT_NEAR(r.p99_ms, 11.0, 0.3);
  EXPECT_NEAR(r.p999_ms, 11.0, 0.3);
  EXPECT_NEAR(r.max_ms, 20.0, 0.5);

  const serve::SloClassReport all = slo.overall(2 * sim::kSecond);
  EXPECT_EQ(all.completed, 6u);
  EXPECT_DOUBLE_EQ(all.attainment, 0.5);
}

TEST(SloTracker, EmptyTrackerReportsPerfectAttainment) {
  serve::SloTracker slo("t");
  const std::size_t cls = slo.add_class("idle", sim::kMillisecond);
  EXPECT_DOUBLE_EQ(slo.report(cls, sim::kSecond).attainment, 1.0);
  EXPECT_EQ(slo.completed(), 0u);
}

TEST(SloTracker, MirrorsIntoObsRegistry) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry* prev = obs::set_thread_metrics(&reg);
  {
    serve::SloTracker slo("serve");
    const std::size_t cls = slo.add_class("read", 25 * sim::kMillisecond);
    slo.record(cls, 5 * sim::kMillisecond, true);
    slo.record(cls, 50 * sim::kMillisecond, true);
    slo.record(cls, 1 * sim::kMillisecond, false);
  }
  const obs::Counter* completed = reg.find_counter("serve.read.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), 3u);
  EXPECT_EQ(reg.find_counter("serve.read.failed")->value(), 1u);
  EXPECT_EQ(reg.find_counter("serve.read.slo_miss")->value(), 2u);
  // find_histogram is new with this subsystem: latency distributions are
  // discoverable like every other instrument kind.
  const obs::Histogram* lat = reg.find_histogram("serve.read.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->value().count(), 3u);
  EXPECT_EQ(reg.find_histogram("serve.read.completed"), nullptr)
      << "find_histogram must not alias other kinds";
  obs::set_thread_metrics(prev);
}

// ---------------------------------------------------------------------------
// exp::Grid

TEST(Grid, RoundTripsFlatAndCoords) {
  exp::Grid g;
  g.add("backend", 2);
  g.add("fault", 3);
  g.add("load", 4);
  EXPECT_EQ(g.size(), 24u);
  EXPECT_EQ(g.dims(), 3u);
  EXPECT_EQ(g.extent(1), 3u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto c = g.coords(i);
    EXPECT_EQ(g.flat(c), i);
  }
  // Row-major: the last dimension is fastest.
  EXPECT_EQ(g.coords(0), (std::vector<std::size_t>{0, 0, 0}));
  EXPECT_EQ(g.coords(1), (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_EQ(g.coords(4), (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(g.coords(12), (std::vector<std::size_t>{1, 0, 0}));
}

TEST(Grid, EmptyGridHasOnePoint) {
  exp::Grid g;
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.coords(0).empty());
  EXPECT_EQ(g.flat({}), 0u);
}

// ---------------------------------------------------------------------------
// Central server cold restart (satellite)

TEST(CentralColdRestart, CrashDropsTheServerCache) {
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.with_glunix = false;
  Cluster c(cfg);
  xfs::CentralFsParams p;
  p.client_cache_blocks = 8;
  std::vector<os::Node*> clients{&c.node(1), &c.node(2), &c.node(3)};
  xfs::CentralServerFs fs(c.rpc(), c.node(0), clients, p);
  fs.start();
  c.faults().attach_central(&fs);

  int ok = 0;
  fs.write(1, 7, [&](bool s) { ok += s; });
  c.run();
  fs.read(2, 7, [&](bool s) { ok += s; });
  c.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(fs.stats().server_mem_hits, 1u)
      << "pre-crash read must hit the warm server cache";
  EXPECT_EQ(fs.stats().server_disk_reads, 0u);

  c.faults().crash_node(0);
  c.faults().restart_node(0);
  EXPECT_EQ(fs.stats().cold_restarts, 1u);

  // Same block, a client that never cached it: the server cache died with
  // the machine, so this read pays the disk.
  fs.read(3, 7, [&](bool s) { ok += s; });
  c.run();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(fs.stats().server_mem_hits, 1u);
  EXPECT_EQ(fs.stats().server_disk_reads, 1u)
      << "post-restart read must be a cold miss";
}

// ---------------------------------------------------------------------------
// ServeWorkload end-to-end

TEST(ServeWorkload, OpenArrivalsAgainstXfsCompleteAndMeetSlo) {
  exp::RunContext ctx(21, 0);
  exp::ScopedRunContext scope(ctx);
  ClusterConfig cfg;
  cfg.workstations = 5;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 32;
  cfg.run = &ctx;
  Cluster c(cfg);

  serve::ServeConfig sc;
  sc.population.clients = 4;
  sc.population.open_fraction = 1.0;
  sc.population.offered_per_sec = 40.0;
  sc.population.horizon = 2 * sim::kSecond;
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.slo = 25 * sim::kMillisecond;
  rd.working_set = 200;
  sc.classes = {rd};
  sc.client_nodes = {1, 2, 3, 4};
  sc.seed = ctx.seed;

  serve::Backends b;
  b.xfs = &c.fs();
  serve::ServeWorkload w(c.engine(), b, sc);
  w.start();
  c.run_until(4 * sim::kSecond);

  const serve::ServeTotals t = w.totals();
  EXPECT_GT(t.arrivals, 50u);
  EXPECT_EQ(t.open_arrivals, t.arrivals);
  EXPECT_EQ(t.completed, t.arrivals) << "everything drains by the deadline";
  EXPECT_EQ(w.in_flight(), 0u);
  const serve::SloClassReport r = w.slo().report(0, sc.population.horizon);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.attainment, 0.95) << "an idle xFS must meet a 25 ms SLO";
}

TEST(ServeWorkload, HybridPopulationRunsClosedLoops) {
  sim::Engine eng;
  coopcache::CoopCacheConfig cc;
  cc.clients = 4;
  cc.client_cache_blocks = 32;
  cc.server_cache_blocks = 128;
  cc.seed = 17;
  coopcache::CoopCacheSim coop(cc);

  serve::ServeConfig sc;
  sc.population.clients = 4;
  sc.population.open_fraction = 0.5;  // clients 0,1 open; 2,3 closed
  sc.population.offered_per_sec = 30.0;
  sc.population.think_mean_ms = 40.0;
  sc.population.horizon = 2 * sim::kSecond;
  serve::RequestClass cache;
  cache.name = "cache";
  cache.op = serve::RequestOp::kCacheRead;
  cache.slo = 20 * sim::kMillisecond;
  cache.working_set = 64;
  sc.classes = {cache};
  sc.client_nodes = {0, 1, 2, 3};
  sc.seed = 23;

  serve::Backends b;
  b.coop = &coop;
  serve::ServeWorkload w(eng, b, sc);
  w.start();
  eng.run();

  const serve::ServeTotals t = w.totals();
  EXPECT_GT(t.open_arrivals, 20u);
  EXPECT_GT(t.closed_arrivals, 20u) << "closed loops never started";
  EXPECT_EQ(t.arrivals, t.open_arrivals + t.closed_arrivals);
  EXPECT_EQ(t.completed, t.arrivals);
  EXPECT_EQ(coop.results().reads, t.arrivals);
  EXPECT_EQ(w.slo().report(0, sc.population.horizon).failed, 0u);
}

TEST(ServeWorkload, ComputeClassRunsThroughGlunix) {
  exp::RunContext ctx(31, 0);
  exp::ScopedRunContext scope(ctx);
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.glunix.idle_window = sim::kSecond;
  cfg.run = &ctx;
  Cluster c(cfg);

  serve::ServeConfig sc;
  sc.population.clients = 2;
  sc.population.open_fraction = 1.0;
  sc.population.offered_per_sec = 4.0;
  sc.population.horizon = 5 * sim::kSecond;
  serve::RequestClass job;
  job.name = "job";
  job.op = serve::RequestOp::kCompute;
  job.slo = sim::kSecond;
  job.compute_work = 20 * sim::kMillisecond;
  job.compute_memory_bytes = 1 << 20;
  sc.classes = {job};
  sc.client_nodes = {0, 1};
  sc.seed = ctx.seed;

  serve::Backends b;
  b.glunix = &c.glunix();
  serve::ServeWorkload w(c.engine(), b, sc);
  w.start();
  // GLUnix heartbeats tick forever; bound the run instead of draining.
  c.run_until(15 * sim::kSecond);

  const serve::ServeTotals t = w.totals();
  EXPECT_GT(t.arrivals, 5u);
  EXPECT_EQ(t.completed, t.arrivals);
  EXPECT_GT(w.slo().report(0, sc.population.horizon).attainment, 0.9);
}

// ---------------------------------------------------------------------------
// Partitioned serving: lane-confined clients, exact shard merges

// A churned central-backend population on the building fabric, run at
// several --threads values: every statistic the workload reports must be
// identical, because per-lane shards merge with exact integer arithmetic
// and every client's events stay on the lane owning its node.
std::string run_churned_building(unsigned threads) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building = net::building_now(2, 4, 2.0);
  cfg.with_glunix = false;
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  cfg.seed = 5;
  Cluster c(cfg);

  xfs::CentralFsParams p;
  p.client_cache_blocks = 0;
  std::vector<os::Node*> fsc;
  for (std::uint32_t i = 1; i < 8; ++i) fsc.push_back(&c.node(i));
  xfs::CentralServerFs fs(c.rpc(), c.node(0), fsc, p);
  fs.prewarm(64);
  fs.start();

  serve::ServeConfig sc;
  sc.population.clients = 24;
  sc.population.open_fraction = 1.0;
  sc.population.offered_per_sec = 300.0;
  sc.population.horizon = sim::kSecond;
  sc.population.diurnal.amplitude = 0.5;
  sc.population.diurnal.period = 800 * sim::kMillisecond;
  sc.population.sessions.mean_on = 300 * sim::kMillisecond;
  sc.population.sessions.mean_off = 200 * sim::kMillisecond;
  serve::RequestClass rd;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.slo = 25 * sim::kMillisecond;
  rd.working_set = 64;
  sc.classes = {rd};
  for (std::uint32_t i = 1; i < 8; ++i) sc.client_nodes.push_back(i);
  sc.seed = 5;

  serve::Backends b;
  b.central = &fs;
  serve::ServeWorkload w(c.engine(), b, sc, c.parallel_engine());
  w.start();
  c.run_until(1500 * sim::kMillisecond);

  const serve::ServeTotals t = w.totals();
  const serve::SloClassReport all = w.slo().overall(sc.population.horizon);
  const xfs::CentralFsStats st = fs.stats();
  std::ostringstream out;
  out << "arrivals=" << t.arrivals << " completed=" << t.completed
      << " in_flight=" << w.in_flight() << " ok=" << all.ok
      << " slo_met=" << all.slo_met << " mean_us="
      << static_cast<long long>(all.mean_ms * 1000) << " p50_us="
      << static_cast<long long>(all.p50_ms * 1000) << " p99_us="
      << static_cast<long long>(all.p99_ms * 1000) << " max_us="
      << static_cast<long long>(all.max_ms * 1000)
      << " reads=" << st.reads << " mem_hits=" << st.server_mem_hits;
  return out.str();
}

TEST(ServeWorkload, ChurnedBuildingRunIsThreadCountInvariant) {
  const std::string t1 = run_churned_building(1);
  const std::string t2 = run_churned_building(2);
  const std::string t4 = run_churned_building(4);
  EXPECT_NE(t1.find("arrivals="), std::string::npos);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

// The live-session headcount is published as an obs gauge; mid-run it
// must agree with the workload's own lane-sharded count and sit strictly
// inside (0, clients) for a churning population.
TEST(ServeWorkload, SessionsActiveGaugeTracksChurn) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry* prev = obs::set_thread_metrics(&reg);
  {
    sim::Engine eng;
    coopcache::CoopCacheConfig cc;
    cc.clients = 4;
    cc.client_cache_blocks = 32;
    cc.server_cache_blocks = 128;
    cc.seed = 17;
    coopcache::CoopCacheSim coop(cc);

    serve::ServeConfig sc;
    sc.population.clients = 16;
    sc.population.open_fraction = 1.0;
    sc.population.offered_per_sec = 100.0;
    sc.population.horizon = 2 * sim::kSecond;
    sc.population.sessions.mean_on = 400 * sim::kMillisecond;
    sc.population.sessions.mean_off = 300 * sim::kMillisecond;
    serve::RequestClass cache;
    cache.name = "cache";
    cache.op = serve::RequestOp::kCacheRead;
    cache.slo = 20 * sim::kMillisecond;
    cache.working_set = 64;
    sc.classes = {cache};
    sc.client_nodes = {0, 1, 2, 3};
    sc.seed = 23;

    serve::Backends b;
    b.coop = &coop;
    serve::ServeWorkload w(eng, b, sc);
    w.start();

    double gauge_mid = -1.0;
    std::uint64_t live_mid = 0;
    eng.schedule_at(sim::kSecond, [&] {
      gauge_mid = reg.find_gauge("serve.sessions_active")->value();
      live_mid = w.sessions_active();
    });
    eng.run();

    EXPECT_EQ(static_cast<std::uint64_t>(gauge_mid), live_mid)
        << "gauge and lane shards disagree";
    EXPECT_GT(live_mid, 0u);
    EXPECT_LT(live_mid, 16u) << "nobody ever logged out at t=1s";
    EXPECT_EQ(w.sessions_active(), 0u) << "all sessions clip to the horizon";
  }
  obs::set_thread_metrics(prev);
}

// ---------------------------------------------------------------------------
// Determinism: a serving sweep is --jobs-invariant, byte for byte.

std::string run_serving_point(exp::RunContext& ctx) {
  ClusterConfig cfg;
  cfg.workstations = 5;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 32;
  cfg.run = &ctx;
  Cluster c(cfg);

  serve::ServeConfig sc;
  sc.population.clients = 4;
  sc.population.open_fraction = 0.75;
  sc.population.offered_per_sec = 30.0 * (1 + ctx.task_index);
  sc.population.horizon = 2 * sim::kSecond;
  serve::RequestClass rd, wr;
  rd.name = "read";
  rd.op = serve::RequestOp::kFileRead;
  rd.slo = 25 * sim::kMillisecond;
  rd.working_set = 200;
  rd.weight = 0.75;
  wr.name = "write";
  wr.op = serve::RequestOp::kFileWrite;
  wr.slo = 100 * sim::kMillisecond;
  wr.working_set = 200;
  wr.weight = 0.25;
  sc.classes = {rd, wr};
  sc.client_nodes = {1, 2, 3, 4};
  sc.seed = ctx.seed;

  serve::Backends b;
  b.xfs = &c.fs();
  serve::ServeWorkload w(c.engine(), b, sc);
  w.start();
  c.run_until(4 * sim::kSecond);

  const serve::ServeTotals t = w.totals();
  const serve::SloClassReport all = w.slo().overall(sc.population.horizon);
  std::ostringstream out;
  out << "seed=" << ctx.seed << " arrivals=" << t.arrivals << " open="
      << t.open_arrivals << " completed=" << t.completed
      << " slo_met=" << all.slo_met << " p99us="
      << static_cast<long long>(all.p99_ms * 1000) << "\n";
  ctx.metrics.dump_json(out);
  return out.str();
}

TEST(ServeWorkload, SweepIsJobsInvariant) {
  const auto serial =
      exp::run_sweep(3, run_serving_point, {.jobs = 1, .base_seed = 19});
  const auto parallel =
      exp::run_sweep(3, run_serving_point, {.jobs = 4, .base_seed = 19});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
  EXPECT_NE(serial[0], serial[1]);
}

}  // namespace
}  // namespace now
