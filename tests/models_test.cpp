// Tests that the analytic models reproduce the paper's tables.
#include <gtest/gtest.h>

#include "models/access.hpp"
#include "models/cost.hpp"
#include "models/gator.hpp"
#include "models/techtrend.hpp"

namespace now::models {
namespace {

// ---- Table 4 ---------------------------------------------------------

TEST(Gator, C90MatchesPaperRow) {
  const auto t = gator_time(GatorWorkload{}, c90_16());
  EXPECT_NEAR(t.ode_sec, 7, 1.0);
  EXPECT_NEAR(t.transport_sec, 4, 1.5);
  EXPECT_NEAR(t.input_sec, 16, 1.0);
  EXPECT_NEAR(t.total_sec, 27, 3.0);
}

TEST(Gator, ParagonMatchesPaperRow) {
  const auto t = gator_time(GatorWorkload{}, paragon_256());
  EXPECT_NEAR(t.ode_sec, 12, 1.0);
  EXPECT_NEAR(t.transport_sec, 24, 2.0);
  EXPECT_NEAR(t.input_sec, 10, 1.0);
  EXPECT_NEAR(t.total_sec, 46, 4.0);
}

TEST(Gator, EthernetPvmBaselineIsDreadful) {
  const auto t = gator_time(GatorWorkload{}, rs6000_ethernet_pvm());
  EXPECT_NEAR(t.ode_sec, 4, 1.0);
  EXPECT_NEAR(t.transport_sec, 23'340, 800);
  EXPECT_NEAR(t.input_sec, 4'030, 150);
  EXPECT_NEAR(t.total_sec, 27'374, 1'000);
  // "three orders of magnitude longer than the Paragon or C-90"
  const auto c90 = gator_time(GatorWorkload{}, c90_16());
  EXPECT_GT(t.total_sec / c90.total_sec, 500);
}

TEST(Gator, EachUpgradeBuysAnOrderOfMagnitude) {
  const GatorWorkload w;
  const double base = gator_time(w, rs6000_ethernet_pvm()).total_sec;
  const double atm = gator_time(w, rs6000_atm_pvm()).total_sec;
  const double pfs = gator_time(w, rs6000_atm_pfs()).total_sec;
  const double am = gator_time(w, rs6000_atm_pfs_am()).total_sec;
  EXPECT_NEAR(atm, 2'211, 250);
  EXPECT_NEAR(pfs, 205, 30);
  EXPECT_NEAR(am, 21, 8);
  EXPECT_GT(base / atm, 8);
  EXPECT_GT(atm / pfs, 8);
  EXPECT_GT(pfs / am, 8);
}

TEST(Gator, FinalNowCompetesWithC90AndBeatsParagon) {
  const GatorWorkload w;
  const auto now_final = gator_time(w, rs6000_atm_pfs_am());
  const auto c90 = gator_time(w, c90_16());
  const auto paragon = gator_time(w, paragon_256());
  EXPECT_LT(now_final.total_sec, paragon.total_sec);
  EXPECT_LT(now_final.total_sec, c90.total_sec * 1.5);
  EXPECT_LT(rs6000_atm_pfs_am().cost_millions, c90_16().cost_millions / 5);
}

// ---- Figure 1 --------------------------------------------------------

TEST(Figure1, FourWayDesktopIsTheCheapestBuild) {
  const auto systems = figure1_systems();
  const double best = figure1_best_price();
  EXPECT_DOUBLE_EQ(figure1_system_price(systems[2]), best);  // 4-way SS-10
}

TEST(Figure1, ServersAndMppsCostAboutTwiceTheBestWorkstation) {
  const auto systems = figure1_systems();
  const double best = figure1_best_price();
  for (std::size_t i = 3; i < systems.size(); ++i) {
    const double ratio = figure1_system_price(systems[i]) / best;
    EXPECT_GT(ratio, 1.6) << systems[i].name;
    EXPECT_LT(ratio, 3.0) << systems[i].name;
  }
}

TEST(Figure1, RepackagingReducesDesktopCost) {
  const auto systems = figure1_systems();
  EXPECT_GT(figure1_system_price(systems[0]),
            figure1_system_price(systems[1]));
  EXPECT_GT(figure1_system_price(systems[1]),
            figure1_system_price(systems[2]));
}

TEST(BellRule, ThirtyThousandToOneGivesAboutFivefold) {
  // "over the past five years the volume of personal computers shipped per
  // supercomputer has been about 30,000:1.  Thus, Bell's rule predicts a
  // fivefold cost advantage."
  EXPECT_NEAR(bell_cost_multiplier(30'000), 5.0, 0.7);
}

// ---- Table 2 ---------------------------------------------------------

TEST(Table2, RowTotalsMatchPaper) {
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].total_us(), 6'900, 1);    // Ethernet remote memory
  EXPECT_NEAR(rows[1].total_us(), 21'700, 1);   // Ethernet remote disk
  EXPECT_NEAR(rows[2].total_us(), 1'050, 1);    // ATM remote memory
  EXPECT_NEAR(rows[3].total_us(), 15'850, 1);   // ATM remote disk
}

TEST(Table2, AtmRemoteMemoryIsOrderOfMagnitudeFasterThanDisk) {
  const auto rows = table2_rows();
  EXPECT_GT(rows[3].total_us() / rows[2].total_us(), 10.0);
}

TEST(Table2, SimulatorAgreesWithTheArithmetic) {
  // The fabric models in src/net should land near the same totals.
  EXPECT_NEAR(simulated_remote_memory_us(false), 6'900, 900);
  EXPECT_NEAR(simulated_remote_memory_us(true), 1'050, 300);
}

// ---- Table 1 ---------------------------------------------------------

TEST(Table1, MppsLagOneToTwoYears) {
  for (const auto& row : table1_rows()) {
    EXPECT_GE(row.lag_years(), 1.0) << row.mpp;
    EXPECT_LE(row.lag_years(), 2.0) << row.mpp;
  }
}

TEST(Table1, TwoYearLagCostsMoreThanTwofold) {
  EXPECT_GT(performance_lag_factor(2.0, 0.5), 2.0);
  EXPECT_NEAR(performance_lag_factor(2.0, 0.5), 2.25, 0.01);
}

TEST(Trends, WorkstationCurveRunsAwayFromSupercomputers) {
  // 80 %/yr vs 20-30 %/yr: after five years the gap is 6-8x and still
  // compounding.
  EXPECT_GT(price_performance_divergence(5.0), 5.0);
  EXPECT_GT(price_performance_divergence(10.0),
            price_performance_divergence(5.0) * 5.0);
}

}  // namespace
}  // namespace now::models
