// Tests for GLUnix: migration, coscheduling, SPMD apps, the overlay study,
// and the daemon/master layer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "glunix/coschedule.hpp"
#include "glunix/glunix.hpp"
#include "glunix/migration.hpp"
#include "glunix/overlay_sim.hpp"
#include "glunix/spmd.hpp"
#include "net/presets.hpp"
#include "net/switched.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "sim/engine.hpp"

namespace now::glunix {
namespace {

using namespace now::sim::literals;

TEST(Migration, SixtyFourMegabytesUnderFourSeconds) {
  // The paper: "with ATM bandwidth and a parallel file system, 64 Mbytes
  // of DRAM can be restored in under 4 seconds."
  MigrationCostModel m;
  EXPECT_LT(sim::to_sec(m.restore_time(64ull << 20)), 4.0);
  EXPECT_GT(sim::to_sec(m.restore_time(64ull << 20)), 1.0);
}

TEST(Migration, SlowerOfNetworkAndPfsGoverns) {
  MigrationParams p;
  p.network_mbytes_per_sec = 100.0;
  p.pfs_mbytes_per_sec = 10.0;
  MigrationCostModel m(p);
  EXPECT_DOUBLE_EQ(m.effective_mbytes_per_sec(), 10.0);
}

struct Rig {
  explicit Rig(int n, std::uint32_t window = 32) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::myrinet());
    mux = std::make_unique<proto::NicMux>(*network);
    proto::AmParams ap;
    ap.costs = proto::am_cm5();
    ap.window = window;
    am = std::make_unique<proto::AmLayer>(*mux, ap);
    rpc = std::make_unique<proto::RpcLayer>(*am);
    for (int i = 0; i < n; ++i) {
      os::NodeParams p;
      // Distinct seeds + quantum jitter keep the nodes' local schedules
      // from staying accidentally phase-locked (see CpuParams).
      p.cpu.quantum_jitter = 0.25;
      p.cpu.seed = static_cast<std::uint64_t>(i) + 1;
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), p));
      mux->attach_node(*nodes.back());
      rpc->bind(*nodes.back());
    }
  }
  std::vector<os::Node*> node_ptrs() {
    std::vector<os::Node*> v;
    for (auto& n : nodes) v.push_back(n.get());
    return v;
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::unique_ptr<proto::RpcLayer> rpc;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

TEST(CoschedulerTest, GangsAlternateInSlots) {
  sim::Engine eng;
  os::CpuParams cp;
  cp.context_switch = 0;
  os::Cpu cpu(eng, cp);
  sim::SimTime a_done = -1, b_done = -1;
  std::vector<os::ProcessId> pa(1), pb(1);
  pa[0] = cpu.spawn("a", os::SchedClass::kBatch, [&] {
    cpu.compute(pa[0], 300_ms, [&] {
      a_done = eng.now();
      cpu.exit(pa[0]);
    });
  });
  pb[0] = cpu.spawn("b", os::SchedClass::kBatch, [&] {
    cpu.compute(pb[0], 300_ms, [&] {
      b_done = eng.now();
      cpu.exit(pb[0]);
    });
  });
  Coscheduler cs(eng, /*slot=*/100_ms);
  cs.add_gang({{&cpu, pa[0]}});
  cs.add_gang({{&cpu, pb[0]}});
  cs.start();
  eng.run_until(5 * sim::kSecond);
  // Each gang gets every other slot: both finish near 600 ms.
  EXPECT_GT(a_done, 0);
  EXPECT_GT(b_done, 0);
  EXPECT_NEAR(sim::to_ms(a_done), 500, 110);
  EXPECT_NEAR(sim::to_ms(b_done), 600, 110);
  cs.stop();
}

SpmdParams quick_params(CommPattern pattern) {
  SpmdParams p;
  p.pattern = pattern;
  p.iterations = 10;
  p.compute_per_iteration = 5_ms;
  p.msg_bytes = 512;
  p.burst = 8;
  p.rpcs_per_iteration = 4;
  return p;
}

TEST(Spmd, EachPatternCompletesSolo) {
  for (const CommPattern pattern :
       {CommPattern::kComputeOnly, CommPattern::kRandomSmall,
        CommPattern::kColumn, CommPattern::kEm3d, CommPattern::kConnect}) {
    Rig rig(4);
    sim::Duration elapsed = 0;
    SpmdApp app(*rig.am, rig.node_ptrs(), quick_params(pattern),
                [&](sim::Duration d) { elapsed = d; });
    app.start();
    rig.engine.run();
    ASSERT_TRUE(app.finished()) << pattern_name(pattern);
    // At least the compute time, at most a generous envelope.
    EXPECT_GE(elapsed, 10 * 5_ms) << pattern_name(pattern);
    EXPECT_LT(sim::to_sec(elapsed), 5.0) << pattern_name(pattern);
  }
}

// Runs `pattern` against one compute-only competitor, local scheduling vs
// coscheduling, and returns time_local / time_cosched.  Apps must span
// many 100 ms quanta or the local schedule degenerates to solo execution.
double figure4_ratio(CommPattern pattern) {
  const int kNodes = 4;
  auto run = [&](bool coscheduled) {
    Rig rig(kNodes, /*window=*/64);
    sim::Duration app_time = 0;
    SpmdParams ap = quick_params(pattern);
    ap.iterations = 40;
    ap.compute_per_iteration = 15_ms;
    // kColumn: a fixed partner at this burst rate overruns 64 credits per
    // descheduling epoch; kRandomSmall spread over 3 peers stays under it.
    ap.burst = 24;
    SpmdApp app(*rig.am, rig.node_ptrs(), ap,
                [&](sim::Duration d) { app_time = d; });
    SpmdParams comp = quick_params(CommPattern::kComputeOnly);
    comp.iterations = 100'000;  // competitor outlives the measured app
    SpmdApp filler(*rig.am, rig.node_ptrs(), comp, nullptr);
    app.start();
    filler.start();
    std::unique_ptr<Coscheduler> cs;
    if (coscheduled) {
      cs = std::make_unique<Coscheduler>(rig.engine, /*slot=*/100_ms);
      cs->add_gang(app.gang());
      cs->add_gang(filler.gang());
      cs->start();
    }
    rig.engine.run_until(30 * 60 * sim::kSecond);
    EXPECT_TRUE(app.finished()) << pattern_name(pattern);
    return app_time;
  };
  const double local = sim::to_sec(run(false));
  const double cosched = sim::to_sec(run(true));
  return local / cosched;
}

TEST(Spmd, Figure4ConnectSuffersMostUnderLocalScheduling) {
  const double r_connect = figure4_ratio(CommPattern::kConnect);
  const double r_random = figure4_ratio(CommPattern::kRandomSmall);
  // The paper's Figure 4 ordering: request/reply programs collapse under
  // local scheduling; well-buffered one-way traffic barely notices.
  EXPECT_GT(r_connect, 1.5);
  EXPECT_LT(r_random, 1.4);
  EXPECT_GT(r_connect, r_random);
}

TEST(Spmd, Figure4Em3dSuffersAtSynchronizationPoints) {
  const double r_em3d = figure4_ratio(CommPattern::kEm3d);
  EXPECT_GT(r_em3d, 1.8);
}

TEST(Spmd, Figure4ColumnOverflowsDestinationBuffers) {
  // "Column runs slowly even though it communicates infrequently, because
  // it overflows the buffers on the destination."
  const double r_column = figure4_ratio(CommPattern::kColumn);
  const double r_random = figure4_ratio(CommPattern::kRandomSmall);
  EXPECT_GT(r_column, 1.25);
  EXPECT_GT(r_column, r_random);
}

TEST(Overlay, DedicatedMppFcfsBaseline) {
  std::vector<trace::ParallelJob> jobs(2);
  jobs[0] = {0, 32, 100 * sim::kSecond, false};
  jobs[1] = {10 * sim::kSecond, 32, 50 * sim::kSecond, false};
  const auto resp = dedicated_mpp_response_times(jobs, 32);
  EXPECT_EQ(sim::to_sec(resp[0]), 100);
  // Second job waits for the first to free the partition.
  EXPECT_EQ(sim::to_sec(resp[1]), (100 - 10) + 50);
}

TEST(Overlay, NowWithAmpleIdleMachinesMatchesDedicatedMpp) {
  trace::UsageParams up;
  up.workstations = 64;
  up.seed = 21;
  const trace::UsageTrace usage(up);
  trace::ParallelJobParams jp;
  jp.duration = 8 * sim::kHour;
  jp.seed = 4;
  const auto jobs = generate_parallel_jobs(jp);
  OverlayParams op;
  op.workstations = 64;
  const auto r = simulate_overlay(usage, jobs, op);
  EXPECT_EQ(r.jobs_completed, jobs.size());
  // Figure 3's right edge: ~10 % slower than the dedicated MPP.
  EXPECT_LT(r.workload_slowdown, 1.6);
  EXPECT_GT(r.workload_slowdown, 0.9);
}

TEST(Overlay, SlowdownShrinksWithMoreWorkstations) {
  trace::UsageParams up;
  up.workstations = 96;
  up.seed = 22;
  const trace::UsageTrace usage(up);
  trace::ParallelJobParams jp;
  jp.duration = 8 * sim::kHour;
  jp.seed = 5;
  const auto jobs = generate_parallel_jobs(jp);

  OverlayParams small;
  small.workstations = 40;
  OverlayParams big;
  big.workstations = 96;
  const auto r_small = simulate_overlay(usage, jobs, small);
  const auto r_big = simulate_overlay(usage, jobs, big);
  EXPECT_EQ(r_big.jobs_completed, jobs.size());
  // More machines, less queueing and eviction pressure.
  EXPECT_LE(r_big.workload_slowdown, r_small.workload_slowdown * 1.05);
}

TEST(GlunixLayer, RemoteJobRunsOnIdleNodeAndCompletes) {
  Rig rig(4);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  net::NodeId where = net::kInvalidNode;
  glu.run_remote(10 * sim::kSecond, 8ull << 20,
                 [&](net::NodeId n) { where = n; });
  rig.engine.run_until(60 * sim::kSecond);
  EXPECT_NE(where, net::kInvalidNode);
  EXPECT_EQ(glu.stats().completed, 1u);
  EXPECT_EQ(glu.stats().migrations, 0u);
}

TEST(GlunixLayer, OwnerReturnEvictsGuestWhichStillCompletes) {
  Rig rig(4);
  GlunixParams gp;
  Glunix glu(*rig.rpc, rig.node_ptrs(), gp);
  glu.start();
  net::NodeId finished_on = net::kInvalidNode;
  glu.run_remote(30 * sim::kSecond, 8ull << 20,
                 [&](net::NodeId n) { finished_on = n; });
  // The owner of every machine except node 3 starts typing at t=10s and
  // keeps typing.
  for (sim::SimTime t = 10 * sim::kSecond; t < 120 * sim::kSecond;
       t += 1 * sim::kSecond) {
    rig.engine.schedule_at(t, [&rig] {
      for (int i = 0; i < 3; ++i) rig.nodes[i]->user_activity();
    });
  }
  rig.engine.run_until(300 * sim::kSecond);
  EXPECT_EQ(glu.stats().completed, 1u);
  if (glu.stats().migrations > 0) {
    EXPECT_EQ(finished_on, 3u);  // ended up on the only idle machine
  }
}

TEST(GlunixLayer, HeartbeatsDetectCrashedNode) {
  Rig rig(4);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  net::NodeId down = net::kInvalidNode;
  glu.set_node_down_handler([&](net::NodeId n) { down = n; });
  rig.engine.schedule_at(5 * sim::kSecond, [&] { rig.nodes[2]->crash(); });
  rig.engine.run_until(30 * sim::kSecond);
  EXPECT_EQ(down, 2u);
  EXPECT_FALSE(glu.node_believed_up(2));
  EXPECT_TRUE(glu.node_believed_up(1));
}

TEST(GlunixLayer, GuestSurvivesNodeCrashViaCheckpointRestart) {
  Rig rig(4);
  GlunixParams gp;
  gp.checkpoint_interval = 5 * sim::kSecond;
  Glunix glu(*rig.rpc, rig.node_ptrs(), gp);
  glu.start();
  bool completed = false;
  net::NodeId first_home = net::kInvalidNode;
  glu.run_remote(30 * sim::kSecond, 8ull << 20,
                 [&](net::NodeId) { completed = true; });
  // Find where it landed, then crash that node mid-run.
  rig.engine.schedule_at(10 * sim::kSecond, [&] {
    for (int i = 0; i < 4; ++i) {
      if (!rig.nodes[i]->cpu().idle()) {
        first_home = static_cast<net::NodeId>(i);
        rig.nodes[i]->crash();
        return;
      }
    }
  });
  rig.engine.run_until(600 * sim::kSecond);
  EXPECT_NE(first_home, net::kInvalidNode);
  EXPECT_TRUE(completed);
  EXPECT_GE(glu.stats().crash_restarts, 1u);
}

TEST(GlunixLayer, RebootedNodeRejoinsThePool) {
  Rig rig(3);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  net::NodeId came_back = net::kInvalidNode;
  glu.set_node_up_handler([&](net::NodeId n) { came_back = n; });
  rig.engine.schedule_at(5 * sim::kSecond, [&] { rig.nodes[2]->crash(); });
  rig.engine.run_until(30 * sim::kSecond);
  EXPECT_FALSE(glu.node_believed_up(2));
  // Hot-swap: the node reboots; heartbeats notice and readmit it.
  rig.engine.schedule_at(31 * sim::kSecond, [&] { rig.nodes[2]->reboot(); });
  rig.engine.run_until(60 * sim::kSecond);
  EXPECT_TRUE(glu.node_believed_up(2));
  EXPECT_EQ(came_back, 2u);
  // And it can host guests again.
  bool done = false;
  glu.run_remote(5 * sim::kSecond, 1 << 20, [&](net::NodeId) {
    done = true;
  });
  rig.engine.run_until(200 * sim::kSecond);
  EXPECT_TRUE(done);
}

TEST(GlunixLayer, EvictionBudgetProtectsDisturbedOwners) {
  // Two hostable machines; machine 1's owner keeps coming back.  After the
  // per-window budget is exhausted, GLUnix stops recruiting machine 1 even
  // when it looks idle.
  Rig rig(3);  // node 0 = master, nodes 1-2 hostable
  GlunixParams gp;
  gp.max_evictions_per_window = 2;
  Glunix glu(*rig.rpc, rig.node_ptrs(), gp);
  glu.start();
  // Node 2's owner types continuously: only node 1 is ever recruitable.
  for (sim::SimTime t = 0; t < 1800 * sim::kSecond; t += sim::kSecond) {
    rig.engine.schedule_at(t, [&rig] { rig.nodes[2]->user_activity(); });
  }
  // Node 1's owner shows up briefly every 3 minutes: each visit evicts the
  // guest, burning budget.
  for (int visit = 0; visit < 6; ++visit) {
    rig.engine.schedule_at((60 + visit * 180) * sim::kSecond, [&rig] {
      rig.nodes[1]->user_activity();
    });
  }
  int completed = 0;
  glu.run_remote(3600 * sim::kSecond, 1 << 20,
                 [&](net::NodeId) { ++completed; });
  rig.engine.run_until(1200 * sim::kSecond);
  // Budget 2: at most 2 owner disturbances, then the machine is off-limits
  // and the job waits (it cannot finish: nowhere left to run).
  EXPECT_LE(glu.stats().migrations, 2u);
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(glu.idle_node_count() != 0, true);  // idle but protected
}

TEST(GlunixLayer, MasterCanLiveOnAnyNode) {
  Rig rig(4);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{}, /*master_index=*/2);
  glu.start();
  net::NodeId where = net::kInvalidNode;
  glu.run_remote(5 * sim::kSecond, 1 << 20,
                 [&](net::NodeId n) { where = n; });
  rig.engine.run_until(60 * sim::kSecond);
  EXPECT_NE(where, net::kInvalidNode);
  EXPECT_NE(where, 2u);  // the control node hosts no guests
}

TEST(GangJobs, RunsWhenEnoughMachinesAndCompletes) {
  Rig rig(6);  // master + 5 hostable
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  bool done = false;
  glu.run_parallel(4, 30 * sim::kSecond, 8ull << 20, [&] { done = true; });
  rig.engine.run_until(120 * sim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(glu.stats().gangs_completed, 1u);
  EXPECT_EQ(glu.stats().gang_pauses, 0u);
}

TEST(GangJobs, QueuesUntilWidthMachinesExist) {
  Rig rig(4);  // master + 3 hostable < width 4
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  bool done = false;
  glu.run_parallel(4, 10 * sim::kSecond, 1 << 20, [&] { done = true; });
  rig.engine.run_until(300 * sim::kSecond);
  EXPECT_FALSE(done);  // forever 3 < 4 machines
  EXPECT_EQ(glu.stats().gangs_completed, 0u);
}

TEST(GangJobs, OwnerReturnPausesGangAndMigratesOneRank) {
  Rig rig(6);  // master + 5 hostable; gang of 3 leaves spares
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  sim::SimTime done_at = -1;
  glu.run_parallel(3, 60 * sim::kSecond, 16ull << 20,
                   [&] { done_at = rig.engine.now(); });
  // At t=20s an owner returns to whichever machine hosts a rank, types for
  // a minute, then leaves.
  rig.engine.schedule_at(20 * sim::kSecond, [&] {
    for (std::uint32_t i = 1; i < 6; ++i) {
      if (!rig.nodes[i]->cpu().idle()) {
        for (int k = 0; k < 60; ++k) {
          rig.engine.schedule_in(k * sim::kSecond,
                                 [&rig, i] { rig.nodes[i]->user_activity(); });
        }
        return;
      }
    }
  });
  rig.engine.run_until(20 * 60 * sim::kSecond);
  EXPECT_GT(done_at, 0);
  EXPECT_GE(glu.stats().gang_pauses, 1u);
  EXPECT_GE(glu.stats().migrations, 1u);
  // The pause + 32 MB round trip costs the gang time: completion is later
  // than the undisturbed 60 s but far from double.
  EXPECT_GT(done_at, 60 * sim::kSecond);
  EXPECT_LT(done_at, 180 * sim::kSecond);
}

TEST(GangJobs, RankCrashRestartsElsewhereAndGangFinishes) {
  Rig rig(6);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  bool done = false;
  glu.run_parallel(3, 60 * sim::kSecond, 8ull << 20, [&] { done = true; });
  // Crash one busy machine mid-run.
  rig.engine.schedule_at(15 * sim::kSecond, [&] {
    for (std::uint32_t i = 1; i < 6; ++i) {
      if (!rig.nodes[i]->cpu().idle()) {
        rig.nodes[i]->crash();
        return;
      }
    }
  });
  rig.engine.run_until(20 * 60 * sim::kSecond);
  EXPECT_TRUE(done);
  EXPECT_GE(glu.stats().crash_restarts, 1u);
  EXPECT_EQ(glu.stats().gangs_completed, 1u);
}

TEST(GlunixLayer, JobsQueueWhenNothingIsIdle) {
  Rig rig(2);
  Glunix glu(*rig.rpc, rig.node_ptrs(), GlunixParams{});
  glu.start();
  // Both owners type continuously.
  for (sim::SimTime t = 0; t < 100 * sim::kSecond; t += sim::kSecond) {
    rig.engine.schedule_at(t, [&rig] {
      rig.nodes[0]->user_activity();
      rig.nodes[1]->user_activity();
    });
  }
  int done = 0;
  glu.run_remote(5 * sim::kSecond, 1 << 20, [&](net::NodeId) { ++done; });
  rig.engine.run_until(90 * sim::kSecond);
  EXPECT_EQ(done, 0);  // nowhere to run yet
  // Owners leave; after the one-minute window the job runs.
  rig.engine.run_until(300 * sim::kSecond);
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace now::glunix
