// Full-stack integration: the building-wide NOW with everything turned on
// at once — GLUnix batch jobs, xFS traffic, network RAM, a node crash, a
// reboot and rejoin — all over one shared fabric.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/cluster.hpp"
#include "glunix/spmd.hpp"
#include "netram/pager.hpp"
#include "sim/random.hpp"

namespace now {
namespace {

using namespace now::sim::literals;

TEST(Integration, ADayWithEverythingOn) {
  ClusterConfig cfg;
  cfg.workstations = 10;
  cfg.with_xfs = true;
  cfg.with_netram_registry = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.xfs.segment_blocks = 9;
  Cluster c(cfg);

  // --- Batch jobs through GLUnix -------------------------------------
  int jobs_done = 0;
  for (int i = 0; i < 4; ++i) {
    c.glunix().run_remote((60 + i * 30) * sim::kSecond, 16ull << 20,
                          [&](net::NodeId) { ++jobs_done; });
  }

  // --- Steady xFS traffic from several clients ------------------------
  auto rng = std::make_shared<sim::Pcg32>(77);
  auto fs_ops = std::make_shared<int>(0);
  auto issue = std::make_shared<std::function<void(int)>>();
  *issue = [&c, rng, fs_ops, issue](int remaining) {
    if (remaining == 0) {
      *issue = nullptr;
      return;
    }
    auto node = rng->next_below(10);
    if (!c.node(node).alive()) node = (node + 1) % 10;
    const xfs::BlockId b = rng->next_below(500);
    auto cont = [&c, fs_ops, issue, remaining] {
      ++*fs_ops;
      c.engine().schedule_in(40 * sim::kMillisecond,
                             [issue, remaining] {
                               if (*issue) (*issue)(remaining - 1);
                             });
    };
    if (rng->bernoulli(0.3)) {
      c.fs().write(node, b, cont);
    } else {
      c.fs().read(node, b, cont);
    }
  };
  (*issue)(2'000);

  // --- An out-of-core computation using network RAM -------------------
  for (std::uint32_t i = 6; i < 10; ++i) {
    c.memory_registry().add_donor(c.node(i));
  }
  netram::NetworkRamPager pager(c.node(1), 8192, c.memory_registry(),
                                c.rpc());
  os::AddressSpace space(c.engine(), /*frames=*/64, 8192, pager);
  auto pages_touched = std::make_shared<int>(0);
  auto touch = std::make_shared<std::function<void(std::uint64_t)>>();
  *touch = [&, pages_touched, touch](std::uint64_t p) {
    if (p == 512) {
      *touch = nullptr;
      return;
    }
    space.access(p % 192, true, [&, pages_touched, touch, p] {
      ++*pages_touched;
      c.engine().schedule_in(5 * sim::kMillisecond, [touch, p] {
        if (*touch) (*touch)(p + 1);
      });
    });
  };
  (*touch)(0);

  // --- Disaster and recovery ------------------------------------------
  net::NodeId went_down = net::kInvalidNode;
  net::NodeId came_back = net::kInvalidNode;
  c.glunix().set_node_down_handler([&](net::NodeId n) { went_down = n; });
  c.glunix().set_node_up_handler([&](net::NodeId n) { came_back = n; });
  c.engine().schedule_at(40 * sim::kSecond, [&] {
    c.crash_node(7);
    c.fs().manager_takeover(7, 8, [] {});
  });
  c.engine().schedule_at(120 * sim::kSecond, [&] { c.node(7).reboot(); });

  c.run_until(20 * sim::kMinute);

  EXPECT_EQ(jobs_done, 4);
  EXPECT_EQ(*fs_ops, 2'000);
  EXPECT_EQ(*pages_touched, 512);
  EXPECT_EQ(went_down, 7u);
  EXPECT_EQ(came_back, 7u);
  EXPECT_TRUE(c.glunix().node_believed_up(7));
  EXPECT_TRUE(c.fs().coherence_invariant_holds());
  EXPECT_GT(c.fs().stats().peer_fetches, 0u);
  EXPECT_GT(pager.stats().remote_writes, 0u);
  EXPECT_EQ(c.fs().stats().manager_takeovers, 1u);
}

TEST(Integration, ParallelAppAndFileServiceShareTheFabric) {
  // An SPMD job and xFS traffic coexist on one switched fabric; both
  // complete, and the parallel app's gang can be coscheduled while file
  // service continues underneath.
  ClusterConfig cfg;
  cfg.workstations = 6;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 32;
  Cluster c(cfg);

  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kEm3d;
  sp.iterations = 15;
  sp.compute_per_iteration = 10_ms;
  sim::Duration app_elapsed = 0;
  glunix::SpmdApp app(c.am(), c.node_ptrs(), sp,
                      [&](sim::Duration d) { app_elapsed = d; });
  app.start();

  int fs_done = 0;
  for (std::uint32_t n = 0; n < 6; ++n) {
    for (xfs::BlockId b = 0; b < 10; ++b) {
      c.fs().write(n, n * 100 + b, [&] { ++fs_done; });
    }
  }
  c.run_until(5 * sim::kMinute);
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(fs_done, 60);
  EXPECT_GT(app_elapsed, 15 * 10_ms);
}

}  // namespace
}  // namespace now
