// Whole Clusters running concurrently under exp::run_sweep.  This is the
// end-to-end isolation test (and the TSan target in CI): N complete
// simulation stacks — engine, network, OS, xFS, metrics — live on worker
// threads at once, and every observable output must match the serial run
// byte for byte.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "exp/run_context.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace now {
namespace {

// One complete simulation: an xFS cluster serving a seeded random
// read/write mix.  Returns every observable output as one string so the
// jobs=1 / jobs=N comparison is a single EXPECT_EQ per point.
std::string run_xfs_point(exp::RunContext& ctx) {
  ClusterConfig cfg;
  cfg.workstations = 5;
  cfg.with_glunix = false;
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 32;
  cfg.xfs.segment_blocks = 8;
  cfg.run = &ctx;
  Cluster c(cfg);
  EXPECT_EQ(&c.metrics(), &ctx.metrics);

  sim::Pcg32 rng(ctx.seed);
  int done = 0;
  for (int op = 0; op < 60; ++op) {
    const std::uint32_t node = rng.next_below(5);
    const xfs::BlockId block = rng.next_below(200);
    if (rng.bernoulli(0.5)) {
      c.fs().write(node, block, [&] { ++done; });
    } else {
      c.fs().read(node, block, [&] { ++done; });
    }
    c.run();
  }
  EXPECT_EQ(done, 60);

  std::ostringstream out;
  out << "seed=" << ctx.seed << " t=" << c.engine().now()
      << " ops=" << done << "\n";
  ctx.metrics.dump_json(out);
  return out.str();
}

TEST(ExpCluster, ConcurrentClustersMatchSerialByteForByte) {
  const auto serial =
      exp::run_sweep(4, run_xfs_point, {.jobs = 1, .base_seed = 11});
  const auto parallel =
      exp::run_sweep(4, run_xfs_point, {.jobs = 2, .base_seed = 11});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
  // Distinct seeds produced genuinely different simulations.
  EXPECT_NE(serial[0], serial[1]);
  // Nothing leaked into the process-wide registry.
  EXPECT_EQ(obs::metrics().find_counter("xfs.reads"), nullptr);
}

TEST(ExpCluster, ClusterSeedsFromRunContext) {
  const auto seeds = exp::run_sweep(
      3,
      [](exp::RunContext& ctx) {
        ClusterConfig cfg;
        cfg.workstations = 2;
        cfg.with_glunix = false;
        cfg.run = &ctx;
        Cluster c(cfg);
        return c.config().seed;
      },
      {.jobs = 2, .base_seed = 5});
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], exp::derive_seed(5, i));
  }
}

// Order-independence regression (satellite #4): a sweep whose points share
// one RNG across iterations is order-dependent and silently breaks under
// --jobs N.  The correct pattern — every point constructs its generator
// from ctx.seed alone — survives any execution order, including reversed.
TEST(ExpCluster, PointsAreOrderIndependent) {
  auto point = [](std::uint64_t seed) {
    sim::Pcg32 rng(seed);
    std::uint64_t acc = 0;
    for (int i = 0; i < 100; ++i) acc = acc * 33 + rng.next_below(1 << 16);
    return acc;
  };
  const std::uint64_t base = 77;
  std::vector<std::uint64_t> forward, reversed(8);
  for (std::size_t i = 0; i < 8; ++i) {
    forward.push_back(point(exp::derive_seed(base, i)));
  }
  for (std::size_t i = 8; i-- > 0;) {
    reversed[i] = point(exp::derive_seed(base, i));
  }
  EXPECT_EQ(forward, reversed);

  // And the anti-pattern really is order-dependent (why ctx.seed exists):
  sim::Pcg32 shared_fwd(base), shared_rev(base);
  std::vector<std::uint64_t> f, r(2);
  f.push_back(shared_fwd.next_below(1 << 16));
  f.push_back(shared_fwd.next_below(1 << 16));
  r[1] = shared_rev.next_below(1 << 16);
  r[0] = shared_rev.next_below(1 << 16);
  EXPECT_NE(f, r);
}

}  // namespace
}  // namespace now
