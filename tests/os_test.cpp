// Unit tests for disk, virtual memory, and node models.
#include <gtest/gtest.h>

#include <vector>

#include "os/disk.hpp"
#include "os/node.hpp"
#include "os/vm.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace now::os {
namespace {

using namespace now::sim::literals;
using sim::Engine;

TEST(Disk, Table2ServiceTimeFor8K) {
  Engine eng;
  Disk d(eng, DiskParams{});
  // Table 2: an 8 KB disk access costs 14,800 us.
  EXPECT_NEAR(sim::to_us(d.service_time(8192, /*sequential=*/false)),
              14'800, 100);
}

TEST(Disk, SequentialAccessSkipsPositioning) {
  Engine eng;
  Disk d(eng, DiskParams{});
  const auto rnd = d.service_time(8192, false);
  const auto seq = d.service_time(8192, true);
  EXPECT_EQ(rnd - seq, DiskParams{}.positioning);
}

TEST(Disk, CompletionCallbackAtServiceTime) {
  Engine eng;
  Disk d(eng, DiskParams{});
  sim::SimTime done_at = -1;
  d.read(0, 8192, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_EQ(done_at, d.service_time(8192, false));
  EXPECT_EQ(d.reads(), 1u);
}

TEST(Disk, FifoQueueingSerializes) {
  Engine eng;
  Disk d(eng, DiskParams{});
  std::vector<sim::SimTime> done;
  // Non-contiguous offsets: every access pays positioning.
  d.read(0, 8192, [&] { done.push_back(eng.now()); });
  d.read(1 << 20, 8192, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1], 2 * done[0]);
}

TEST(Disk, BackToBackSequentialRunsAtMediaRate) {
  Engine eng;
  Disk d(eng, DiskParams{});
  sim::SimTime done_at = -1;
  d.read(0, 8192, [] {});
  d.read(8192, 8192, [&] { done_at = eng.now(); });  // head already there
  eng.run();
  const auto expect =
      d.service_time(8192, false) + d.service_time(8192, true);
  EXPECT_EQ(done_at, expect);
}

TEST(Disk, WritesCounted) {
  Engine eng;
  Disk d(eng, DiskParams{});
  d.write(0, 4096, [] {});
  d.write(123456, 4096, [] {});
  eng.run();
  EXPECT_EQ(d.writes(), 2u);
  EXPECT_EQ(d.reads(), 0u);
}

TEST(Disk, ElevatorBeatsFifoOnDeepRandomQueue) {
  // The same 32 scattered reads, FIFO vs SCAN, with distance-based seeks:
  // the elevator's sweep order cuts total positioning.
  auto run = [](DiskSched sched) {
    Engine eng;
    DiskParams p;
    p.scheduler = sched;
    p.distance_seek = true;
    Disk d(eng, p);
    sim::Pcg32 rng(5);
    sim::SimTime done_at = 0;
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t off = (rng.next_below(100'000)) * 8192ull;
      d.read(off, 8192, [&] { done_at = eng.now(); });
    }
    eng.run();
    return done_at;
  };
  const auto fifo = run(DiskSched::kFifo);
  const auto scan = run(DiskSched::kElevator);
  EXPECT_LT(scan, fifo);
  EXPECT_LT(static_cast<double>(scan) / static_cast<double>(fifo), 0.85);
}

TEST(Disk, ElevatorServesEveryRequest) {
  Engine eng;
  DiskParams p;
  p.scheduler = DiskSched::kElevator;
  Disk d(eng, p);
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    d.read((15 - i) * 1'000'000ull, 4096, [&] { ++done; });
  }
  eng.run();
  EXPECT_EQ(done, 16);
  EXPECT_EQ(d.reads(), 16u);
}

TEST(Disk, DistanceSeekScalesWithDistance) {
  Engine eng;
  DiskParams p;
  p.distance_seek = true;
  Disk d(eng, p);
  const auto near = d.positioning_time(1 << 20);
  const auto far = d.positioning_time(800ull << 20);
  EXPECT_LT(near, far);
  EXPECT_GE(near, p.min_positioning);
  EXPECT_LE(far, p.positioning);
}

TEST(Disk, FlatSeekIgnoresDistance) {
  Engine eng;
  Disk d(eng, DiskParams{});
  EXPECT_EQ(d.positioning_time(1), d.positioning_time(1ull << 30));
}

// A pager that completes after a fixed delay and counts traffic.
class FakePager final : public Pager {
 public:
  FakePager(Engine& eng, sim::Duration delay) : eng_(eng), delay_(delay) {}
  void page_in(std::uint64_t, std::function<void()> done) override {
    ++ins;
    eng_.schedule_in(delay_, std::move(done));
  }
  void page_out(std::uint64_t, std::function<void()> done) override {
    ++outs;
    eng_.schedule_in(delay_, std::move(done));
  }
  int ins = 0;
  int outs = 0;

 private:
  Engine& eng_;
  sim::Duration delay_;
};

TEST(Vm, ColdPagesFaultWarmPagesHit) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, /*frames=*/4, /*page_bytes=*/8192, pager);
  int completions = 0;
  as.access(1, false, [&] { ++completions; });
  eng.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(as.stats().faults, 1u);
  as.access(1, false, [&] { ++completions; });
  EXPECT_EQ(completions, 2);  // synchronous hit
  EXPECT_EQ(as.stats().hits, 1u);
}

TEST(Vm, LruEvictsColdestPage) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, 2, 8192, pager);
  as.access(1, false, [] {});
  eng.run();
  as.access(2, false, [] {});
  eng.run();
  as.reference(1, false);  // 1 becomes MRU, 2 is now coldest
  as.access(3, false, [] {});
  eng.run();
  EXPECT_TRUE(as.resident(1));
  EXPECT_FALSE(as.resident(2));
  EXPECT_TRUE(as.resident(3));
  EXPECT_EQ(as.stats().evictions, 1u);
}

TEST(Vm, DirtyVictimIsWrittenBack) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, 1, 8192, pager);
  as.access(1, /*write=*/true, [] {});
  eng.run();
  as.access(2, false, [] {});
  eng.run();
  EXPECT_EQ(pager.outs, 1);  // dirty page 1 flushed
  EXPECT_EQ(as.stats().writebacks, 1u);
}

TEST(Vm, CleanVictimIsDropped) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, 1, 8192, pager);
  as.access(1, /*write=*/false, [] {});
  eng.run();
  as.access(2, false, [] {});
  eng.run();
  EXPECT_EQ(pager.outs, 0);
  EXPECT_EQ(as.stats().writebacks, 0u);
}

TEST(Vm, ConcurrentFaultsOnSamePageCoalesce) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, 4, 8192, pager);
  int completions = 0;
  as.fault(7, false, [&] { ++completions; });
  as.fault(7, false, [&] { ++completions; });
  eng.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(pager.ins, 1);  // one fetch served both
}

TEST(Vm, FaultCostIsPagerLatency) {
  Engine eng;
  FakePager pager(eng, 15_ms);
  AddressSpace as(eng, 2, 8192, pager);
  sim::SimTime done_at = -1;
  as.access(9, false, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_EQ(done_at, 15_ms);
}

TEST(Vm, DiscardAllEmptiesResidentSet) {
  Engine eng;
  FakePager pager(eng, 1_ms);
  AddressSpace as(eng, 8, 8192, pager);
  for (std::uint64_t p = 0; p < 5; ++p) as.access(p, true, [] {});
  eng.run();
  EXPECT_EQ(as.resident_count(), 5u);
  as.discard_all();
  EXPECT_EQ(as.resident_count(), 0u);
}

TEST(Node, IdleDetectionUsesActivityTimestamp) {
  Engine eng;
  Node n(eng, 0, NodeParams{});
  // A node that has never seen input counts as idle.
  EXPECT_TRUE(n.user_idle_for(1_min));
  eng.schedule_at(10 * sim::kSecond, [&] { n.user_activity(); });
  eng.run();
  eng.run_until(40 * sim::kSecond);
  EXPECT_FALSE(n.user_idle_for(1_min));
  eng.run_until(71 * sim::kSecond);
  EXPECT_TRUE(n.user_idle_for(1_min));
}

TEST(Node, DramReservationRespectsCapacity) {
  Engine eng;
  NodeParams p;
  p.dram_bytes = 64ull << 20;
  Node n(eng, 0, p);
  EXPECT_TRUE(n.reserve_dram(60ull << 20));
  EXPECT_FALSE(n.reserve_dram(8ull << 20));  // would overcommit
  EXPECT_EQ(n.dram_free(), 4ull << 20);
  n.release_dram(30ull << 20);
  EXPECT_TRUE(n.reserve_dram(8ull << 20));
}

TEST(Node, CopyCostMatchesTable2) {
  Engine eng;
  Node n(eng, 0, NodeParams{});
  // Table 2: 250 us of memory-copy time per 8 KB.
  EXPECT_NEAR(sim::to_us(n.copy_cost(8192)), 250, 1);
}

TEST(Node, CrashKillsProcessesAndMemory) {
  Engine eng;
  Node n(eng, 0, NodeParams{});
  bool finished = false;
  const ProcessId pid = n.cpu().spawn("p", SchedClass::kBatch, [&] {
    n.cpu().compute(pid, 1_s, [&] {
      finished = true;
      n.cpu().exit(pid);
    });
  });
  n.reserve_dram(1 << 20);
  eng.schedule_at(100_ms, [&] { n.crash(); });
  eng.run();
  EXPECT_FALSE(finished);
  EXPECT_FALSE(n.alive());
  EXPECT_EQ(n.dram_in_use(), 0u);
  n.reboot();
  EXPECT_TRUE(n.alive());
}

}  // namespace
}  // namespace now::os
