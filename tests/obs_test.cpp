// Tests for the now::obs observability subsystem: the metrics registry,
// simulated-time span tracing with its Chrome-JSON exporter, and the
// periodic sampler.  Everything here runs against fresh local registries
// or clears the process-wide singletons up front, so the tests do not
// depend on what other instrumented code has already registered.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace now::obs {
namespace {

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, LookupCreatesOnceAndReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.packets_sent");
  Counter& b = reg.counter("net.packets_sent");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);

  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.find_counter("net.packets_sent")->value(), 3u);
  EXPECT_EQ(reg.find_counter("net.nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("net.packets_sent"), nullptr);  // wrong kind
}

TEST(MetricsRegistry, ReadCoversEveryKind) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(2.5);
  reg.summary("s").observe(10.0);
  reg.summary("s").observe(20.0);
  reg.histogram("h").observe(4.0);

  double v = 0;
  EXPECT_TRUE(reg.read("c", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
  EXPECT_TRUE(reg.read("g", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(reg.read("s", &v));
  EXPECT_DOUBLE_EQ(v, 15.0);  // summaries read as their mean
  EXPECT_TRUE(reg.read("h", &v));
  EXPECT_DOUBLE_EQ(v, 4.0);
  EXPECT_FALSE(reg.read("missing", &v));
}

TEST(MetricsRegistry, DumpIsSortedAndDeterministic) {
  MetricsRegistry reg;
  // Registered out of order; the dump must come out sorted.
  reg.counter("zeta").inc();
  reg.gauge("alpha").set(1.0);
  reg.counter("mid.path").inc(2);

  const std::string d1 = reg.dump_json();
  EXPECT_LT(d1.find("\"alpha\""), d1.find("\"mid.path\""));
  EXPECT_LT(d1.find("\"mid.path\""), d1.find("\"zeta\""));

  // A second registry built the same way dumps byte-identically.
  MetricsRegistry reg2;
  reg2.counter("zeta").inc();
  reg2.gauge("alpha").set(1.0);
  reg2.counter("mid.path").inc(2);
  EXPECT_EQ(d1, reg2.dump_json());
}

TEST(MetricsRegistry, DisabledUpdatesAreDropped) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  set_enabled(false);
  c.inc(5);
  g.set(9.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

// --- Tracer -------------------------------------------------------------

TEST(Tracer, SpanNestingRecordsContainedIntervals) {
  Tracer& t = tracer();
  t.clear();
  t.enable(1024);
  sim::Engine engine;
  t.set_clock(&engine);
  const TrackId track = t.track("test");

  engine.schedule_at(1 * sim::kMillisecond, [&] {
    Span outer(3, track, "outer");
    {
      Span inner(3, track, "inner");
      engine.schedule_in(0, [] {});  // same-instant noop
    }  // inner closes here, at the same sim time it opened
    outer.end();
  });
  engine.schedule_at(2 * sim::kMillisecond, [] {});
  engine.run();

  // Two spans recorded: inner first (it closed first), both at t=1ms.
  ASSERT_EQ(t.size(), 2u);
  std::ostringstream os;
  t.export_chrome_json(os);
  const std::string json = os.str();
  const auto inner_at = json.find("\"inner\"");
  const auto outer_at = json.find("\"outer\"");
  ASSERT_NE(inner_at, std::string::npos);
  ASSERT_NE(outer_at, std::string::npos);
  EXPECT_LT(inner_at, outer_at);
  t.disable();
  t.set_clock(nullptr);
}

TEST(Tracer, ExportedJsonHasCompleteEventsAndMetadata) {
  Tracer& t = tracer();
  t.clear();
  t.enable(1024);
  const TrackId net = t.track("net");
  t.complete(/*node=*/7, net, "pkt", 1'000, 251'000);  // 0.25 ms span
  t.instant_at(/*node=*/7, net, "drop", 500'000);

  std::ostringstream os;
  t.export_chrome_json(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Process metadata names the node row, thread metadata the module track.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("node 7"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // The span: phase X, microsecond timestamps (1000 ns = 1 us, no
  // fractional digits when the remainder is zero).
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 250,"), std::string::npos);
  // The instant: phase i.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);

  // Structural validity: balanced braces/brackets, no trailing comma.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  t.disable();
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer& t = tracer();
  t.clear();
  t.enable(/*capacity=*/4);
  const TrackId track = t.track("ring");
  for (int i = 0; i < 10; ++i) {
    t.instant_at(0, track, "e" + std::to_string(i), i * 1'000);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  std::ostringstream os;
  t.export_chrome_json(os);
  const std::string json = os.str();
  // Only the newest four survive, oldest-first in the export.
  EXPECT_EQ(json.find("\"e5\""), std::string::npos);
  ASSERT_NE(json.find("\"e6\""), std::string::npos);
  EXPECT_LT(json.find("\"e6\""), json.find("\"e9\""));
  t.disable();
}

TEST(Tracer, NothingRecordedWhileDisabled) {
  Tracer& t = tracer();
  t.clear();
  EXPECT_FALSE(t.enabled());
  t.instant_at(0, t.track("off"), "ignored", 1'000);
  EXPECT_EQ(t.size(), 0u);
}

// --- Sampler ------------------------------------------------------------

TEST(Sampler, SnapshotsWatchedInstrumentsEveryPeriod) {
  sim::Engine engine;
  MetricsRegistry reg;
  Counter& sent = reg.counter("sent");
  Sampler sampler(engine, reg, 10 * sim::kMillisecond);
  sampler.watch("sent");
  sampler.watch("unregistered.path");  // samples as 0
  sampler.start();

  // +1 at t=5ms, +2 at t=15ms, +4 at t=25ms.
  engine.schedule_at(5 * sim::kMillisecond, [&] { sent.inc(1); });
  engine.schedule_at(15 * sim::kMillisecond, [&] { sent.inc(2); });
  engine.schedule_at(25 * sim::kMillisecond, [&] { sent.inc(4); });
  // Note 35 ms, not 30: a stop at exactly 30 ms (priority 0) would run
  // before — and cancel — the 30 ms sample (priority +1).
  engine.schedule_at(35 * sim::kMillisecond, [&] { sampler.stop(); });
  engine.run();

  ASSERT_EQ(sampler.rows(), 3u);
  std::ostringstream os;
  sampler.dump_csv(os);
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string header, r1, r2, r3;
  std::getline(lines, header);
  std::getline(lines, r1);
  std::getline(lines, r2);
  std::getline(lines, r3);
  EXPECT_EQ(header, "time_ms,sent,unregistered.path");
  EXPECT_EQ(r1, "10,1,0");
  EXPECT_EQ(r2, "20,3,0");
  EXPECT_EQ(r3, "30,7,0");
}

TEST(Sampler, JsonDumpListsColumnsAndRows) {
  sim::Engine engine;
  MetricsRegistry reg;
  reg.gauge("level").set(2.0);
  Sampler sampler(engine, reg, sim::kMillisecond);
  sampler.watch("level");
  sampler.start();
  engine.schedule_at(3 * sim::kMillisecond + 1, [&] { sampler.stop(); });
  engine.run();

  std::ostringstream os;
  sampler.dump_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"level\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_EQ(sampler.rows(), 3u);
}

}  // namespace
}  // namespace now::obs
