// Proves the engine's hot path is allocation-free: once an engine is warm
// (pool chunks and queue buffers grown), scheduling, cancelling, rescheduling,
// and dispatching events whose captures fit InlinedCallback's small buffer
// must perform zero heap allocations.
//
// Every global operator new in this binary is replaced with a counting
// wrapper, so any std::function-style boxing on the hot path fails the test.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/callback.hpp"
#include "sim/engine.hpp"

namespace {

std::uint64_t g_new_calls = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace now::sim {
namespace {

constexpr int kEvents = 4'096;

// Grows the pool and queue buffers past what the measured phase needs.
void warm(Engine& eng) {
  std::vector<EventId> ids;
  ids.reserve(2 * kEvents);
  for (int i = 0; i < 2 * kEvents; ++i) {
    ids.push_back(eng.schedule_at(i, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) eng.cancel(ids[i]);
  eng.run();
}

TEST(EngineAlloc, WarmHotPathIsAllocationFree) {
  Engine eng;
  warm(eng);

  struct Payload {  // 40-byte capture: inline in the 48-byte SBO
    std::array<std::uint64_t, 4> data;
    std::uint64_t* sink;
  };
  std::uint64_t sum = 0;
  Payload payload{{1, 2, 3, 4}, &sum};

  std::vector<EventId> ids;
  ids.reserve(kEvents);  // the test's own bookkeeping allocates; snapshot after
  const std::uint64_t baseline = g_new_calls;
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(eng.schedule_at(eng.now() + i, [payload] {
      *payload.sink += payload.data[0] + payload.data[3];
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 4) eng.cancel(ids[i]);
  for (std::size_t i = 1; i < ids.size(); i += 4) {
    eng.reschedule_in(ids[i], 2 * kEvents);
  }
  eng.run();
  EXPECT_EQ(g_new_calls, baseline) << "hot path allocated on the heap";
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kEvents - kEvents / 4) * 5);
}

TEST(EngineAlloc, OversizedCapturesFallBackToHeap) {
  Engine eng;
  warm(eng);
  std::array<char, 64> big{};
  big[63] = 1;
  int fired = 0;
  const std::uint64_t baseline = g_new_calls;
  eng.schedule_in(1, [big, &fired] { fired += big[63]; });
  EXPECT_GT(g_new_calls, baseline);  // proves the counter actually counts
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineAlloc, InlineCallbackReportsSboFit) {
  struct Small {
    void* a;
    void* b;
    void operator()() const {}
  };
  struct Big {
    std::array<char, InlinedCallback::kInlineSize + 1> bytes;
    void operator()() const {}
  };
  EXPECT_TRUE(InlinedCallback::fits_inline<Small>());
  EXPECT_FALSE(InlinedCallback::fits_inline<Big>());
}

}  // namespace
}  // namespace now::sim
