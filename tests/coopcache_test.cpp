// Tests for the cooperative-caching simulator (Table 3's machinery).
#include <gtest/gtest.h>

#include "coopcache/coopcache.hpp"
#include "coopcache/lru.hpp"
#include "trace/fs_trace.hpp"

namespace now::coopcache {
namespace {

TEST(Lru, InsertTouchEvictOrder) {
  LruCache c(2);
  std::uint64_t victim = 0;
  EXPECT_FALSE(c.insert(1, &victim));
  EXPECT_FALSE(c.insert(2, &victim));
  EXPECT_TRUE(c.touch(1));       // 2 is now LRU
  EXPECT_TRUE(c.insert(3, &victim));
  EXPECT_EQ(victim, 2u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
  EXPECT_FALSE(c.contains(2));
}

TEST(Lru, TouchMissingReturnsFalse) {
  LruCache c(2);
  EXPECT_FALSE(c.touch(9));
}

TEST(Lru, EraseRemoves) {
  LruCache c(2);
  c.insert(1);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.size(), 0u);
}

TEST(Lru, ReinsertingPresentKeyTouches) {
  LruCache c(2);
  c.insert(1);
  c.insert(2);
  c.insert(1);  // refresh, no eviction
  std::uint64_t victim = 0;
  EXPECT_TRUE(c.insert(3, &victim));
  EXPECT_EQ(victim, 2u);
}

TEST(Lru, ZeroCapacityNeverStores) {
  LruCache c(0);
  c.insert(1);
  EXPECT_FALSE(c.contains(1));
}

CoopCacheConfig small_config(Policy p) {
  CoopCacheConfig cfg;
  cfg.clients = 3;
  cfg.client_cache_blocks = 4;
  cfg.server_cache_blocks = 8;
  cfg.policy = p;
  return cfg;
}

TEST(CoopCache, LocalHitAfterFirstRead) {
  CoopCacheSim sim(small_config(Policy::kClientServer));
  sim.access(0, 100, false);  // disk
  sim.access(0, 100, false);  // local
  EXPECT_EQ(sim.results().disk_reads, 1u);
  EXPECT_EQ(sim.results().local_hits, 1u);
}

TEST(CoopCache, ClientServerIgnoresPeers) {
  CoopCacheSim sim(small_config(Policy::kClientServer));
  sim.access(0, 100, false);     // disk; now cached at client 0 and server
  // Push block 100 out of the server cache with distinct other blocks.
  for (std::uint64_t b = 1; b <= 8; ++b) sim.access(1, 1000 + b, false);
  sim.access(2, 100, false);     // client 0 holds it, but no cooperation
  EXPECT_EQ(sim.results().remote_client_hits, 0u);
  EXPECT_EQ(sim.results().disk_reads, 9u + 1u);
}

TEST(CoopCache, GreedyForwardingUsesPeerMemory) {
  CoopCacheSim sim(small_config(Policy::kGreedyForwarding));
  sim.access(0, 100, false);  // disk
  for (std::uint64_t b = 1; b <= 8; ++b) sim.access(1, 1000 + b, false);
  sim.access(2, 100, false);  // forwarded from client 0's memory
  EXPECT_EQ(sim.results().remote_client_hits, 1u);
}

TEST(CoopCache, ServerCacheCatchesRepeatMisses) {
  CoopCacheSim sim(small_config(Policy::kClientServer));
  sim.access(0, 100, false);                       // disk, fills server
  for (std::uint64_t b = 1; b <= 4; ++b) sim.access(0, 200 + b, false);
  // Block 100 evicted from client 0's 4-block cache but still in server.
  sim.access(0, 100, false);
  EXPECT_EQ(sim.results().server_mem_hits, 1u);
  EXPECT_EQ(sim.results().disk_reads, 5u);
}

TEST(CoopCache, NChanceForwardsSinglets) {
  CoopCacheConfig cfg = small_config(Policy::kNChance);
  CoopCacheSim sim(cfg);
  sim.access(0, 100, false);
  // Evict block 100 from client 0 (the only copy -> singlet): it should
  // hop to a peer's cache rather than vanish.
  for (std::uint64_t b = 1; b <= 4; ++b) sim.access(0, 200 + b, false);
  EXPECT_GE(sim.holders(100), 1u);
}

TEST(CoopCache, NChanceRecirculationIsBounded) {
  CoopCacheConfig cfg = small_config(Policy::kNChance);
  cfg.nchance_limit = 1;
  CoopCacheSim sim(cfg);
  sim.access(0, 100, false);
  // Flood everyone with distinct blocks; block 100 can be forwarded at most
  // once, then must die.  Mostly checks this terminates and stays sane.
  for (std::uint32_t c = 0; c < cfg.clients; ++c) {
    for (std::uint64_t b = 0; b < 50; ++b) {
      sim.access(c, 10'000 + c * 100 + b, false);
    }
  }
  SUCCEED();
}

TEST(CoopCache, WritesCountedSeparately) {
  CoopCacheSim sim(small_config(Policy::kClientServer));
  sim.access(0, 1, true);
  sim.access(0, 1, false);
  EXPECT_EQ(sim.results().writes, 1u);
  EXPECT_EQ(sim.results().reads, 1u);
  EXPECT_EQ(sim.results().local_hits, 1u);  // write installed it
}

TEST(CoopCache, ResponseTimeUsesCostModel) {
  CoopCacheResults r;
  r.reads = 100;
  r.local_hits = 78;
  r.server_mem_hits = 6;
  r.disk_reads = 16;
  CacheCosts costs;
  // 0.78*0.25 + 0.06*1.05 + 0.16*15.85 ms = 2.79 ms -- Table 3's 2.8 ms row.
  EXPECT_NEAR(r.mean_read_response_ms(costs), 2.79, 0.02);
}

// Replays the Table 3 workload (scaled in trace length for test speed)
// under one policy, with a 40 % warm-up prefix excluded from the stats.
CoopCacheResults run_table3_workload(Policy policy) {
  trace::FsWorkloadParams wp;
  wp.clients = 42;
  wp.accesses_per_client = 40'000;
  wp.shared_blocks = 12'288;
  wp.private_blocks = 4'096;
  wp.zipf_private = 1.10;
  wp.shared_fraction = 0.35;
  const auto accesses = trace::generate_fs_trace(wp);

  CoopCacheConfig cfg;           // Table 3: 16 MB clients, 128 MB server
  cfg.clients = wp.clients;
  cfg.client_cache_blocks = 2'048;
  cfg.server_cache_blocks = 16'384;
  cfg.policy = policy;

  CoopCacheSim sim(cfg);
  const std::size_t warm = accesses.size() * 2 / 5;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (i == warm) sim.reset_stats();
    sim.access(accesses[i].client, accesses[i].block, accesses[i].is_write);
  }
  return sim.results();
}

// The headline property: on a shared workload, cooperation at least halves
// disk reads and substantially improves read response (Table 3's shape).
TEST(CoopCache, CooperationBeatsClientServerOnSharedWorkload) {
  const auto r_cs = run_table3_workload(Policy::kClientServer);
  const auto r_nc = run_table3_workload(Policy::kNChance);
  EXPECT_LT(r_nc.miss_rate(), r_cs.miss_rate() * 0.6);
  EXPECT_GT(r_nc.remote_client_hits, 0u);
  const CacheCosts costs;
  EXPECT_LT(r_nc.mean_read_response_ms(costs),
            r_cs.mean_read_response_ms(costs) / 1.3);
}

TEST(CoopCache, CentralCoordinationAlsoHelps) {
  const auto r_cs = run_table3_workload(Policy::kClientServer);
  const auto r_cc = run_table3_workload(Policy::kCentrallyCoordinated);
  EXPECT_LT(r_cc.miss_rate(), r_cs.miss_rate());
}

TEST(CoopCache, GreedyForwardingSitsBetweenBaselineAndNChance) {
  const auto r_cs = run_table3_workload(Policy::kClientServer);
  const auto r_gf = run_table3_workload(Policy::kGreedyForwarding);
  const auto r_nc = run_table3_workload(Policy::kNChance);
  EXPECT_LT(r_gf.miss_rate(), r_cs.miss_rate());
  EXPECT_LT(r_nc.miss_rate(), r_gf.miss_rate());
}

// Determinism: identical seeds give identical results.
TEST(CoopCache, DeterministicForSeed) {
  trace::FsWorkloadParams wp;
  wp.clients = 6;
  wp.accesses_per_client = 2'000;
  const auto accesses = trace::generate_fs_trace(wp);
  CoopCacheConfig cfg;
  cfg.clients = wp.clients;
  cfg.client_cache_blocks = 256;
  cfg.server_cache_blocks = 1'024;
  cfg.policy = Policy::kNChance;
  CoopCacheSim a(cfg), b(cfg);
  for (const auto& acc : accesses) {
    a.access(acc.client, acc.block, acc.is_write);
    b.access(acc.client, acc.block, acc.is_write);
  }
  EXPECT_EQ(a.results().disk_reads, b.results().disk_reads);
  EXPECT_EQ(a.results().remote_client_hits, b.results().remote_client_hits);
}

}  // namespace
}  // namespace now::coopcache
