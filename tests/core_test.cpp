// Integration tests through the now::Cluster facade: the whole stack
// working together.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "glunix/spmd.hpp"
#include "netram/pager.hpp"

namespace now {
namespace {

using namespace now::sim::literals;

TEST(Cluster, BuildsAndIdles) {
  ClusterConfig cfg;
  cfg.workstations = 8;
  Cluster c(cfg);
  c.run_for(10 * sim::kSecond);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_TRUE(c.node(3).alive());
}

TEST(Cluster, GlunixRunsRemoteJobsEndToEnd) {
  ClusterConfig cfg;
  cfg.workstations = 6;
  Cluster c(cfg);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    c.glunix().run_remote(20 * sim::kSecond, 16ull << 20,
                          [&](net::NodeId) { ++completed; });
  }
  c.run_until(120 * sim::kSecond);
  EXPECT_EQ(completed, 3);
}

TEST(Cluster, XfsServesTheWholeCluster) {
  ClusterConfig cfg;
  cfg.workstations = 6;
  cfg.with_glunix = false;  // its periodic timers would keep run() going
  cfg.with_xfs = true;
  cfg.xfs.client_cache_blocks = 64;
  cfg.xfs.segment_blocks = 8;
  Cluster c(cfg);
  int done = 0;
  // Every node writes a few blocks; every node reads a neighbour's block.
  for (std::uint32_t n = 0; n < 6; ++n) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      c.fs().write(n, 100 * n + b, [&] { ++done; });
    }
  }
  c.run();
  for (std::uint32_t n = 0; n < 6; ++n) {
    c.fs().read((n + 1) % 6, 100 * n, [&] { ++done; });
  }
  c.run();
  EXPECT_EQ(done, 6 * 4 + 6);
  EXPECT_GT(c.fs().stats().peer_fetches, 0u);  // cooperative reads happened
}

TEST(Cluster, CrashPropagatesAndGlunixNotices) {
  ClusterConfig cfg;
  cfg.workstations = 6;
  cfg.with_xfs = true;
  Cluster c(cfg);
  net::NodeId down = net::kInvalidNode;
  c.glunix().set_node_down_handler([&](net::NodeId n) { down = n; });
  c.engine().schedule_at(3 * sim::kSecond, [&] { c.crash_node(4); });
  c.run_until(30 * sim::kSecond);
  EXPECT_EQ(down, 4u);
  EXPECT_TRUE(c.storage_degraded());
  EXPECT_FALSE(c.node(4).alive());
}

TEST(Cluster, NetworkRamAcrossTheFacade) {
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.with_glunix = false;
  cfg.with_netram_registry = true;
  Cluster c(cfg);
  c.memory_registry().add_donor(c.node(2));
  c.memory_registry().add_donor(c.node(3));
  netram::NetworkRamPager pager(c.node(0), 8192, c.memory_registry(),
                                c.rpc());
  os::AddressSpace space(c.engine(), /*frames=*/16, 8192, pager);
  int faults_served = 0;
  for (std::uint64_t p = 0; p < 48; ++p) {
    space.access(p, /*write=*/true, [&] { ++faults_served; });
    c.run();
  }
  EXPECT_EQ(faults_served, 48);
  EXPECT_GT(pager.stats().remote_writes, 0u);
}

TEST(Cluster, ParallelProgramOnTheCluster) {
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.with_glunix = false;
  cfg.fabric = Fabric::kMyrinet;
  Cluster c(cfg);
  glunix::SpmdParams sp;
  sp.pattern = glunix::CommPattern::kEm3d;
  sp.iterations = 20;
  sp.compute_per_iteration = 5_ms;
  sim::Duration elapsed = 0;
  glunix::SpmdApp app(c.am(), c.node_ptrs(), sp,
                      [&](sim::Duration d) { elapsed = d; });
  app.start();
  c.run_until(60 * sim::kSecond);
  EXPECT_TRUE(app.finished());
  EXPECT_GT(elapsed, 20 * 5_ms);
}

TEST(Cluster, EthernetFabricIsSupported) {
  ClusterConfig cfg;
  cfg.workstations = 4;
  cfg.fabric = Fabric::kEthernet;
  cfg.with_glunix = false;
  Cluster c(cfg);
  bool got = false;
  c.rpc().register_method(1, 200,
                          [](net::NodeId, std::any,
                             proto::RpcLayer::ReplyFn reply) {
                            reply(64, {});
                          });
  c.rpc().call(0, 1, 200, 64, {}, [&](std::any) { got = true; });
  c.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace now
