// Unit tests for the fabric models.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/placement.hpp"
#include "net/presets.hpp"
#include "net/shared_bus.hpp"
#include "net/switched.hpp"
#include "sim/engine.hpp"

namespace now::net {
namespace {

using sim::kMicrosecond;

Packet make_packet(NodeId src, NodeId dst, std::uint32_t bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  return p;
}

TEST(FabricParams, SerializationScalesWithBytes) {
  FabricParams p;
  p.link_bandwidth_bps = 100e6;  // 100 Mb/s -> 80 ns/byte
  EXPECT_EQ(p.serialization(1000), sim::from_us(80));
  EXPECT_EQ(p.serialization(0), 0);
}

TEST(FabricParams, HeaderBytesAdded) {
  FabricParams p;
  p.link_bandwidth_bps = 8e6;  // 1 us per byte
  p.header_bytes = 20;
  EXPECT_EQ(p.serialization(100), sim::from_us(120));
}

TEST(FabricParams, AtmCellsRoundUp) {
  FabricParams p = atm_155mbps();
  // 49 bytes of payload needs two 53-byte cells.
  const auto one_cell = p.serialization(48);
  const auto two_cells = p.serialization(49);
  EXPECT_GT(two_cells, one_cell);
  EXPECT_EQ(two_cells, p.serialization(96));
}

TEST(SwitchedNetwork, UnloadedTransitMatchesModel) {
  sim::Engine eng;
  SwitchedNetwork net(eng, fddi_medusa());
  sim::SimTime delivered_at = -1;
  net.attach(0, [](Packet&&) {});
  net.attach(1, [&](Packet&&) { delivered_at = eng.now(); });
  net.send(make_packet(0, 1, 1024));
  eng.run();
  EXPECT_EQ(delivered_at, net.unloaded_transit(1024));
}

TEST(SwitchedNetwork, UplinkSerializesBackToBackSends) {
  sim::Engine eng;
  FabricParams p;
  p.link_bandwidth_bps = 8e6;  // 1 us/byte
  p.latency = 0;
  SwitchedNetwork net(eng, p);
  std::vector<sim::SimTime> times;
  net.attach(0, [](Packet&&) {});
  net.attach(1, [&](Packet&&) { times.push_back(eng.now()); });
  net.send(make_packet(0, 1, 100));
  net.send(make_packet(0, 1, 100));
  eng.run();
  ASSERT_EQ(times.size(), 2u);
  // Second packet waits for the first's serialization on the uplink, then
  // also queues behind it on the downlink.
  EXPECT_EQ(times[0], sim::from_us(200));
  EXPECT_EQ(times[1], sim::from_us(300));
}

TEST(SwitchedNetwork, DisjointPairsDontContend) {
  sim::Engine eng;
  FabricParams p;
  p.link_bandwidth_bps = 8e6;
  p.latency = 0;
  SwitchedNetwork net(eng, p);
  std::vector<sim::SimTime> times(4, -1);
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&, n](Packet&&) { times[n] = eng.now(); });
  }
  net.send(make_packet(0, 1, 100));
  net.send(make_packet(2, 3, 100));
  eng.run();
  // Switched fabric: both transfers complete in one serialization x2.
  EXPECT_EQ(times[1], times[3]);
}

TEST(SwitchedNetwork, DownlinkContentionQueuesFanIn) {
  sim::Engine eng;
  FabricParams p;
  p.link_bandwidth_bps = 8e6;
  p.latency = 0;
  SwitchedNetwork net(eng, p);
  std::vector<sim::SimTime> arrivals;
  for (NodeId n = 0; n < 3; ++n) {
    net.attach(n, [&](Packet&&) { arrivals.push_back(eng.now()); });
  }
  // Two senders target node 2 simultaneously: the second transfer must
  // queue on node 2's downlink.
  net.send(make_packet(0, 2, 100));
  net.send(make_packet(1, 2, 100));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::from_us(200));
  EXPECT_EQ(arrivals[1], sim::from_us(300));
}

TEST(SharedBus, SendersShareOneMedium) {
  sim::Engine eng;
  FabricParams p;
  p.link_bandwidth_bps = 8e6;
  p.latency = 0;
  SharedBusNetwork net(eng, p);
  std::vector<sim::SimTime> arrivals;
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&](Packet&&) { arrivals.push_back(eng.now()); });
  }
  // Disjoint pairs STILL contend on Ethernet — the defining difference
  // from the switched fabric.
  net.send(make_packet(0, 1, 100));
  net.send(make_packet(2, 3, 100));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], sim::from_us(100));
}

TEST(SharedBus, UtilizationTracksLoad) {
  sim::Engine eng;
  SharedBusNetwork net(eng, ethernet_10mbps());
  net.attach(0, [](Packet&&) {});
  net.attach(1, [](Packet&&) {});
  for (int i = 0; i < 50; ++i) net.send(make_packet(0, 1, 1500));
  eng.run();
  EXPECT_GT(net.utilization(), 0.5);
  EXPECT_LE(net.utilization(), 1.0);
}

TEST(Network, RxBufferOverflowDrops) {
  sim::Engine eng;
  SwitchedNetwork net(eng, fddi_medusa());
  int delivered = 0;
  net.attach(0, [](Packet&&) {});
  net.attach(1, [&](Packet&&) { ++delivered; }, /*rx_buffer_bytes=*/2048);
  for (int i = 0; i < 4; ++i) net.send(make_packet(0, 1, 1024));
  eng.run();
  // Nothing released the buffer, so only two packets fit.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().packets_dropped, 2u);
}

TEST(Network, ReleaseRxMakesRoomAgain) {
  sim::Engine eng;
  SwitchedNetwork net(eng, fddi_medusa());
  int delivered = 0;
  net.attach(0, [](Packet&&) {});
  net.attach(1,
             [&](Packet&& pkt) {
               ++delivered;
               net.release_rx(1, pkt.size_bytes);  // consume immediately
             },
             /*rx_buffer_bytes=*/2048);
  for (int i = 0; i < 4; ++i) net.send(make_packet(0, 1, 1024));
  eng.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(net.stats().packets_dropped, 0u);
}

TEST(Network, StatsCountTraffic) {
  sim::Engine eng;
  SwitchedNetwork net(eng, myrinet());
  net.attach(0, [](Packet&&) {});
  net.attach(1, [](Packet&&) {});
  net.send(make_packet(0, 1, 4096));
  net.send(make_packet(1, 0, 100));
  eng.run();
  EXPECT_EQ(net.stats().packets_sent, 2u);
  EXPECT_EQ(net.stats().packets_delivered, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 4196u);
}

TEST(Presets, RelativeSpeeds) {
  // The paper's ordering: MPP fabrics << switched LANs << shared Ethernet
  // for an 8 KB transfer.
  sim::Engine eng;
  SwitchedNetwork mpp(eng, cm5_fabric());
  SwitchedNetwork atm(eng, atm_155mbps());
  SharedBusNetwork eth(eng, ethernet_10mbps());
  const auto t_mpp = mpp.unloaded_transit(8192);
  const auto t_atm = atm.unloaded_transit(8192);
  const auto t_eth = eth.unloaded_transit(8192);
  EXPECT_LT(t_mpp, t_atm);
  EXPECT_LT(t_atm, t_eth);
  // Table 2's data-transfer row: ~6,250 us on Ethernet vs ~400 us on ATM
  // for 8 KB; our wire models should land in that regime.
  EXPECT_NEAR(sim::to_us(t_eth), 6'250, 800);
  // Cut-through ATM: one ~400-470 us serialization plus switch latency.
  EXPECT_NEAR(sim::to_us(t_atm), 500, 150);
}

// ---------------------------------------------------------------------------
// Client placement helpers (building-scale benches)

TEST(Placement, RackLocalSkipsTheServerAndCycles) {
  TopologyParams topo;
  topo.nodes_per_rack = 4;
  topo.racks = 3;
  // Server mid-rack: slots are the rack's other nodes in increasing id
  // order, reused round-robin once the rack is exhausted.
  const auto c = rack_local_clients(topo, 5, 7);
  const std::vector<NodeId> want{4, 6, 7, 4, 6, 7, 4};
  EXPECT_EQ(c, want);
  for (const NodeId n : c) {
    EXPECT_EQ(n / 4, 5u / 4) << "left the server's rack";
    EXPECT_NE(n, 5u);
  }
}

TEST(Placement, SpreadDealsOnePerRackThenWraps) {
  TopologyParams topo;
  topo.nodes_per_rack = 4;
  topo.racks = 4;
  // Server in rack 0: racks 1..3 get one client each, then a second each,
  // and the slot index advances every full pass.
  const auto c = spread_clients(topo, 0, 8);
  const std::vector<NodeId> want{4, 8, 12, 5, 9, 13, 6, 10};
  EXPECT_EQ(c, want);
  for (const NodeId n : c) EXPECT_NE(n / 4, 0u) << "landed in server rack";
}

TEST(Placement, SpreadSkipsAnInteriorServerRack) {
  TopologyParams topo;
  topo.nodes_per_rack = 2;
  topo.racks = 3;
  const auto c = spread_clients(topo, 3, 4);  // server in rack 1
  const std::vector<NodeId> want{0, 4, 1, 5};
  EXPECT_EQ(c, want);
}

TEST(Placement, HelpersArePureFunctions) {
  TopologyParams topo;
  topo.nodes_per_rack = 32;
  topo.racks = 32;
  EXPECT_EQ(rack_local_clients(topo, 0, 100),
            rack_local_clients(topo, 0, 100));
  EXPECT_EQ(spread_clients(topo, 0, 2048), spread_clients(topo, 0, 2048));
  // 2048 clients over 31 non-server racks x 32 slots: everything stays in
  // bounds and off the server's rack.
  for (const NodeId n : spread_clients(topo, 0, 2048)) {
    EXPECT_LT(n, 1024u);
    EXPECT_NE(n / 32, 0u);
  }
}

}  // namespace
}  // namespace now::net
