// Tests for the synthetic trace generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/fs_trace.hpp"
#include "trace/nfs_trace.hpp"
#include "trace/parallel_trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/usage_trace.hpp"

namespace now::trace {
namespace {

TEST(FsTrace, VolumeAndOrdering) {
  FsWorkloadParams p;
  p.clients = 5;
  p.accesses_per_client = 1'000;
  const auto t = generate_fs_trace(p);
  // Activity is skewed: heavy clients issue the full count, light clients a
  // small fraction, so total volume lies between the two extremes.
  EXPECT_GE(t.size(),
            static_cast<std::size_t>(5 * 1000 * p.light_activity_scale));
  EXPECT_LE(t.size(), 5'000u);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end(),
                             [](const FsAccess& a, const FsAccess& b) {
                               return a.at < b.at;
                             }));
}

TEST(FsTrace, PrivateBlocksAreDisjointPerClient) {
  FsWorkloadParams p;
  p.clients = 4;
  p.accesses_per_client = 2'000;
  const auto t = generate_fs_trace(p);
  for (const auto& a : t) {
    if (a.block < p.shared_blocks) continue;  // shared pool
    const auto owner = (a.block - p.shared_blocks) / p.private_blocks;
    EXPECT_EQ(owner, a.client);
  }
}

TEST(FsTrace, SharedBlocksAreAccessedByManyClients) {
  FsWorkloadParams p;
  p.clients = 8;
  p.accesses_per_client = 4'000;
  const auto t = generate_fs_trace(p);
  // The hottest shared block should be touched by most clients.
  std::vector<std::uint64_t> count_per_client(p.clients, 0);
  std::vector<std::uint32_t> clients_on_block0;
  for (const auto& a : t) {
    if (a.block < p.shared_blocks) ++count_per_client[a.client];
  }
  for (const auto c : count_per_client) EXPECT_GT(c, 0u);
}

TEST(FsTrace, WriteFractionApproximatelyHonored) {
  FsWorkloadParams p;
  p.clients = 4;
  p.accesses_per_client = 10'000;
  p.write_fraction = 0.2;
  const auto t = generate_fs_trace(p);
  const auto writes = std::count_if(t.begin(), t.end(),
                                    [](const FsAccess& a) {
                                      return a.is_write;
                                    });
  EXPECT_NEAR(static_cast<double>(writes) / t.size(), 0.2, 0.02);
}

TEST(FsTrace, DeterministicForSeed) {
  FsWorkloadParams p;
  p.clients = 3;
  p.accesses_per_client = 500;
  const auto a = generate_fs_trace(p);
  const auto b = generate_fs_trace(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].block, b[i].block);
    EXPECT_EQ(a[i].client, b[i].client);
  }
}

TEST(UsageTraceTest, MostWorkstationsFullyIdleDuringTheDay) {
  // The paper: "more than 60 percent of workstations were available 100
  // percent of the time" even in daytime.
  UsageParams p;
  p.seed = 7;
  const UsageTrace t(p);
  EXPECT_GT(t.fraction_always_idle(), 0.40);
  EXPECT_GT(t.average_idle_fraction(2 * sim::kMinute), 0.60);
}

TEST(UsageTraceTest, BusyQueriesMatchIntervals) {
  UsageParams p;
  p.workstations = 10;
  p.seed = 3;
  const UsageTrace t(p);
  for (std::uint32_t n = 0; n < 10; ++n) {
    for (const auto& b : t.intervals(n)) {
      EXPECT_TRUE(t.busy(n, b.begin));
      EXPECT_TRUE(t.busy(n, (b.begin + b.end) / 2));
      EXPECT_FALSE(t.busy(n, b.end));  // half-open interval
    }
  }
}

TEST(UsageTraceTest, IdleThroughSeesUpcomingActivity) {
  UsageParams p;
  p.workstations = 30;
  p.seed = 11;
  const UsageTrace t(p);
  bool checked = false;
  for (std::uint32_t n = 0; n < p.workstations && !checked; ++n) {
    const auto& v = t.intervals(n);
    if (v.empty()) continue;
    const auto& b = v.front();
    if (b.begin > 2 * sim::kMinute) {
      EXPECT_FALSE(t.idle_through(n, b.begin - sim::kMinute,
                                  2 * sim::kMinute));
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ParallelTrace, JobsFitThePartition) {
  ParallelJobParams p;
  p.seed = 5;
  const auto jobs = generate_parallel_jobs(p);
  ASSERT_GT(jobs.size(), 10u);
  for (const auto& j : jobs) {
    EXPECT_LE(j.width, p.partition);
    EXPECT_GE(j.width, 4u);
    EXPECT_GT(j.work, 0);
    EXPECT_LT(j.arrival, p.duration);
  }
  EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end(),
                             [](const ParallelJob& a, const ParallelJob& b) {
                               return a.arrival < b.arrival;
                             }));
}

TEST(ParallelTrace, MixOfDevelopmentAndProduction) {
  ParallelJobParams p;
  p.duration = 48 * sim::kHour;
  const auto jobs = generate_parallel_jobs(p);
  const auto dev = std::count_if(jobs.begin(), jobs.end(),
                                 [](const ParallelJob& j) {
                                   return j.development;
                                 });
  EXPECT_GT(dev, 0);
  EXPECT_LT(static_cast<std::size_t>(dev), jobs.size());
  // Production runs dominate processor-seconds.
  double dev_ps = 0, prod_ps = 0;
  for (const auto& j : jobs) {
    (j.development ? dev_ps : prod_ps) += sim::to_sec(j.work) * j.width;
  }
  EXPECT_GT(prod_ps, dev_ps);
}

TEST(ParallelTrace, DemandIsModerateForOverlayStudy) {
  // Figure 3 needs an MPP workload that a 32-node partition can serve:
  // offered load below capacity.
  ParallelJobParams p;
  const auto jobs = generate_parallel_jobs(p);
  const double capacity = sim::to_sec(p.duration) * p.partition;
  EXPECT_LT(total_processor_seconds(jobs), capacity);
  EXPECT_GT(total_processor_seconds(jobs), capacity * 0.1);
}

TEST(TraceIo, FsTraceRoundTrips) {
  FsWorkloadParams p;
  p.clients = 3;
  p.accesses_per_client = 400;
  const auto original = generate_fs_trace(p);
  std::stringstream buf;
  write_fs_trace(buf, original);
  const auto loaded = read_fs_trace(buf);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].client, original[i].client);
    EXPECT_EQ(loaded[i].block, original[i].block);
    EXPECT_EQ(loaded[i].is_write, original[i].is_write);
    EXPECT_NEAR(sim::to_us(loaded[i].at), sim::to_us(original[i].at), 1.0);
  }
}

TEST(TraceIo, UsageTraceRoundTrips) {
  UsageParams p;
  p.workstations = 6;
  p.seed = 2;
  const UsageTrace original(p);
  std::stringstream buf;
  write_usage_trace(buf, original);
  const auto loaded = read_usage_intervals(buf);
  ASSERT_LE(loaded.size(), 6u);
  for (std::uint32_t n = 0; n < loaded.size(); ++n) {
    ASSERT_EQ(loaded[n].size(), original.intervals(n).size()) << n;
    for (std::size_t i = 0; i < loaded[n].size(); ++i) {
      EXPECT_NEAR(sim::to_us(loaded[n][i].begin),
                  sim::to_us(original.intervals(n)[i].begin), 1.0);
    }
  }
}

TEST(TraceIo, ParallelJobsRoundTrip) {
  ParallelJobParams p;
  p.seed = 3;
  const auto original = generate_parallel_jobs(p);
  std::stringstream buf;
  write_parallel_jobs(buf, original);
  const auto loaded = read_parallel_jobs(buf);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].width, original[i].width);
    EXPECT_EQ(loaded[i].development, original[i].development);
  }
}

TEST(TraceIo, CommentsAndBlanksAreSkipped) {
  std::stringstream buf;
  buf << "# a comment\n\n  \n100.5 2 77 w\n# another\n200 0 1 r\n";
  const auto loaded = read_fs_trace(buf);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].client, 2u);
  EXPECT_TRUE(loaded[0].is_write);
  EXPECT_FALSE(loaded[1].is_write);
}

TEST(TraceIo, MalformedLinesThrowWithLineNumber) {
  std::stringstream buf;
  buf << "100 2 77 w\nnot a record\n";
  try {
    read_fs_trace(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, BadIntervalOrderingRejected) {
  std::stringstream buf;
  buf << "0 500 100\n";  // end before begin
  EXPECT_THROW(read_usage_intervals(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedFsLineCitesLineNumber) {
  std::stringstream buf;
  buf << "# header\n100 2 77 w\n200 3 12\n";  // missing the r|w field
  try {
    read_fs_trace(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, OutOfOrderFsTimestampsRejected) {
  std::stringstream buf;
  buf << "200 0 1 r\n100 0 2 r\n";  // time runs backwards
  try {
    read_fs_trace(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out-of-order"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(TraceIo, ExtraFsFieldsRejected) {
  std::stringstream buf;
  buf << "100 2 77 w trailing-garbage\n";
  EXPECT_THROW(read_fs_trace(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedIntervalLineCitesLineNumber) {
  std::stringstream buf;
  buf << "0 100 500\n1 600\n";  // missing end_us
  try {
    read_usage_intervals(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, MalformedParallelJobCitesLineNumber) {
  std::stringstream buf;
  buf << "100 8 5000 p\n200 0 5000 p\n";  // zero-width job
  try {
    read_parallel_jobs(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, OutOfOrderParallelArrivalsRejected) {
  std::stringstream buf;
  buf << "500 8 1000 p\n100 4 1000 d\n";
  try {
    read_parallel_jobs(buf);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out-of-order"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, UnknownParallelJobKindRejected) {
  std::stringstream buf;
  buf << "100 8 5000 x\n";  // kind must be p or d
  EXPECT_THROW(read_parallel_jobs(buf), std::runtime_error);
}

TEST(NfsTrace, NinetyFivePercentUnder200Bytes) {
  NfsWorkloadParams p;
  const auto msgs = generate_nfs_messages(p);
  EXPECT_NEAR(fraction_below(msgs, 201), 0.95, 0.01);
}

TEST(NfsTrace, BandwidthUpgradeAloneBarelyHelps) {
  // The paper's arithmetic: an 8x bandwidth upgrade cuts only the per-byte
  // term; with overhead dominating, the overall win is ~20 %.
  NfsWorkloadParams p;
  const auto msgs = generate_nfs_messages(p);
  const double ethernet_us_per_byte = 8.0 / 10.0;  // 10 Mb/s
  const double atm_us_per_byte = 8.0 / 78.0;       // delivered TCP rate
  const double overhead_us = 456;
  const double before = total_time_us(msgs, overhead_us,
                                      ethernet_us_per_byte);
  const double after = total_time_us(msgs, overhead_us, atm_us_per_byte);
  const double improvement = 1.0 - after / before;
  EXPECT_GT(improvement, 0.10);
  EXPECT_LT(improvement, 0.35);
}

}  // namespace
}  // namespace now::trace
