// Tests for now::exp — seed derivation, the work-stealing pool, the
// sweep runner, and per-run isolation of process-wide state.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/pool.hpp"
#include "exp/run_context.hpp"
#include "exp/runner.hpp"
#include "exp/seed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"

namespace {

using namespace now;

// ---------------------------------------------------------------------------
// derive_seed

// Golden values pin the derivation scheme forever: any change to the mixer
// silently reseeds every experiment in the repo, so it must be loud.
TEST(DeriveSeed, GoldenValues) {
  EXPECT_EQ(exp::derive_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(exp::derive_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(exp::derive_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(exp::derive_seed(1, 1), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(exp::derive_seed(1, 7), 0x85e7bb0f12278575ULL);
  EXPECT_EQ(exp::derive_seed(42, 3), 0x581ce1ff0e4ae394ULL);
  EXPECT_EQ(exp::derive_seed(0xdeadbeefULL, 1000000),
            0xa9f301d8d37d23a7ULL);
}

TEST(DeriveSeed, IsConstexpr) {
  static_assert(exp::derive_seed(1, 0) == 0x910a2dec89025cc1ULL);
}

TEST(DeriveSeed, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 2ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seen.insert(exp::derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 1000u);
}

TEST(DeriveSeed, NeverZero) {
  // Components treat seed 0 as "derive for me"; the runner must never
  // hand one out.  (Exhaustive search is impossible; spot-check a spread.)
  for (std::uint64_t base = 0; base < 64; ++base) {
    for (std::uint64_t i = 0; i < 4096; ++i) {
      EXPECT_NE(exp::derive_seed(base, i), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// WorkStealingPool

TEST(Pool, EffectiveJobs) {
  EXPECT_GE(exp::effective_jobs(0), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(exp::effective_jobs(1), 1u);
  EXPECT_EQ(exp::effective_jobs(7), 7u);
}

TEST(Pool, ConstructDestructWithoutWork) {
  for (int i = 0; i < 8; ++i) {
    exp::WorkStealingPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
  }  // destructor must join cleanly with no batch ever submitted
}

TEST(Pool, RunsEveryIndexExactlyOnce) {
  exp::WorkStealingPool pool(4);
  constexpr std::size_t kN = 10'000;  // tiny tasks stress dispatch
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Pool, ReusableAcrossBatches) {
  exp::WorkStealingPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_each_index(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(Pool, ZeroAndSingleTaskBatches) {
  exp::WorkStealingPool pool(4);
  std::atomic<int> calls{0};
  pool.for_each_index(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.for_each_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Pool, RethrowsLowestFailingIndex) {
  exp::WorkStealingPool pool(4);
  // Several indices throw; the batch drains and the *lowest* failing
  // index's exception surfaces — deterministic under any interleaving.
  std::atomic<int> ran{0};
  try {
    pool.for_each_index(64, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7 || i == 13 || i == 50) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  EXPECT_EQ(ran.load(), 64);  // a failure does not cancel the batch
}

TEST(Pool, UsableAfterAFailedBatch) {
  exp::WorkStealingPool pool(2);
  EXPECT_THROW(pool.for_each_index(
                   4, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::atomic<int> ok{0};
  pool.for_each_index(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

// ---------------------------------------------------------------------------
// run_sweep

// The core determinism contract: the result vector is a pure function of
// (base_seed, index) and therefore invariant under the jobs count.
TEST(RunSweep, ResultsInvariantUnderJobs) {
  const auto task = [](exp::RunContext& ctx) {
    // A little simulated "work" driven entirely by the derived seed.
    sim::Pcg32 rng(ctx.seed);
    std::uint64_t acc = ctx.task_index;
    for (int i = 0; i < 1000; ++i) acc = acc * 31 + rng.next_below(1 << 20);
    return acc;
  };
  const auto serial = exp::run_sweep(40, task, {.jobs = 1, .base_seed = 7});
  const auto par = exp::run_sweep(40, task, {.jobs = 8, .base_seed = 7});
  EXPECT_EQ(serial, par);
}

// Metrics recorded through the plain obs::metrics() entry point inside a
// task land in the task's private registry — and the dumps, like the
// results, are byte-identical between serial and parallel execution.
TEST(RunSweep, MetricsDumpsInvariantUnderJobs) {
  const auto task = [](exp::RunContext& ctx) {
    EXPECT_EQ(&obs::metrics(), &ctx.metrics);
    sim::Pcg32 rng(ctx.seed);
    auto& c = obs::metrics().counter("exp.test.ops");
    auto& s = obs::metrics().summary("exp.test.latency");
    for (int i = 0; i < 200; ++i) {
      c.inc();
      s.observe(static_cast<double>(rng.next_below(1000)));
    }
    return ctx.metrics.dump_json();
  };
  const auto serial = exp::run_sweep(16, task, {.jobs = 1, .base_seed = 3});
  const auto par = exp::run_sweep(16, task, {.jobs = 8, .base_seed = 3});
  EXPECT_EQ(serial, par);
  // And distinct indices really did get distinct seeds / data.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(RunSweep, SeedsMatchDeriveSeedWithFirstIndex) {
  exp::SweepOptions opt;
  opt.jobs = 2;
  opt.base_seed = 99;
  opt.first_index = 10;
  const auto seeds = exp::run_sweep(
      5, [](exp::RunContext& ctx) { return ctx.seed; }, opt);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], exp::derive_seed(99, 10 + i));
  }
}

TEST(RunSweep, WallTimesRecordedPerTask) {
  std::vector<double> wall;
  exp::SweepOptions opt;
  opt.jobs = 4;
  opt.wall_ms = &wall;
  const auto r = exp::run_sweep(
      6, [](exp::RunContext& ctx) { return ctx.task_index; }, opt);
  ASSERT_EQ(wall.size(), 6u);
  for (double w : wall) EXPECT_GE(w, 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r[i], i);
}

TEST(RunSweep, ExceptionFromLowestIndexPropagates) {
  EXPECT_THROW(exp::run_sweep(8,
                              [](exp::RunContext& ctx) -> int {
                                if (ctx.task_index >= 3) {
                                  throw std::runtime_error("sim blew up");
                                }
                                return 0;
                              },
                              {.jobs = 4}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// ScopedRunContext isolation

TEST(RunContext, InstallsAndRestoresThreadState) {
  EXPECT_EQ(exp::current_context(), nullptr);
  obs::MetricsRegistry& process = obs::metrics();
  {
    exp::RunContext ctx(5, 2);
    exp::ScopedRunContext scope(ctx);
    EXPECT_EQ(exp::current_context(), &ctx);
    EXPECT_EQ(&obs::metrics(), &ctx.metrics);
    EXPECT_EQ(&obs::tracer(), &ctx.tracer);
    EXPECT_EQ(sim::thread_log_config(), &ctx.log);
    {
      exp::RunContext inner(5, 3);
      exp::ScopedRunContext nested(inner);
      EXPECT_EQ(exp::current_context(), &inner);
      EXPECT_EQ(&obs::metrics(), &inner.metrics);
    }
    EXPECT_EQ(exp::current_context(), &ctx);  // nesting restores
    EXPECT_EQ(&obs::metrics(), &ctx.metrics);
  }
  EXPECT_EQ(exp::current_context(), nullptr);
  EXPECT_EQ(&obs::metrics(), &process);
  EXPECT_EQ(sim::thread_log_config(), nullptr);
}

TEST(RunContext, LogLevelChangesAreRunLocal) {
  const sim::LogLevel before = sim::log_level();
  {
    exp::RunContext ctx(1, 0);
    exp::ScopedRunContext scope(ctx);
    sim::set_log_level(sim::LogLevel::kTrace);  // routes to ctx.log
    EXPECT_EQ(sim::log_level(), sim::LogLevel::kTrace);
    EXPECT_EQ(ctx.log.level, sim::LogLevel::kTrace);
  }
  EXPECT_EQ(sim::log_level(), before);  // process default untouched
}

TEST(RunContext, ConcurrentRunsKeepPrivateMetrics) {
  // Two threads, each inside its own context, hammer the same metric path;
  // the counts must stay per-run (no shared registry, no lost updates).
  constexpr int kPerRun = 50'000;
  auto body = [](exp::RunContext& ctx) {
    exp::ScopedRunContext scope(ctx);
    auto& c = obs::metrics().counter("exp.isolation.count");
    for (int i = 0; i < kPerRun; ++i) c.inc();
  };
  exp::RunContext a(1, 0), b(1, 1);
  std::thread ta(body, std::ref(a));
  std::thread tb(body, std::ref(b));
  ta.join();
  tb.join();
  EXPECT_EQ(a.metrics.find_counter("exp.isolation.count")->value(),
            static_cast<std::uint64_t>(kPerRun));
  EXPECT_EQ(b.metrics.find_counter("exp.isolation.count")->value(),
            static_cast<std::uint64_t>(kPerRun));
  EXPECT_EQ(obs::metrics().find_counter("exp.isolation.count"), nullptr);
}

}  // namespace
