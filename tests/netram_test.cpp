// Tests for network RAM: registry, pagers, and the multigrid workload.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/presets.hpp"
#include "net/switched.hpp"
#include "netram/multigrid.hpp"
#include "netram/pager.hpp"
#include "netram/registry.hpp"
#include "proto/am.hpp"
#include "proto/nic_mux.hpp"
#include "proto/rpc.hpp"
#include "sim/engine.hpp"

namespace now::netram {
namespace {

using namespace now::sim::literals;

struct Rig {
  explicit Rig(int n, std::uint64_t donor_dram = 64ull << 20) {
    network = std::make_unique<net::SwitchedNetwork>(engine,
                                                     net::atm_155mbps());
    mux = std::make_unique<proto::NicMux>(*network);
    am = std::make_unique<proto::AmLayer>(*mux, proto::AmParams{});
    rpc = std::make_unique<proto::RpcLayer>(*am);
    for (int i = 0; i < n; ++i) {
      os::NodeParams p;
      p.dram_bytes = donor_dram;
      nodes.push_back(std::make_unique<os::Node>(
          engine, static_cast<net::NodeId>(i), p));
      mux->attach_node(*nodes.back());
      rpc->bind(*nodes.back());
    }
  }
  sim::Engine engine;
  std::unique_ptr<net::SwitchedNetwork> network;
  std::unique_ptr<proto::NicMux> mux;
  std::unique_ptr<proto::AmLayer> am;
  std::unique_ptr<proto::RpcLayer> rpc;
  std::vector<std::unique_ptr<os::Node>> nodes;
};

TEST(Registry, RoundRobinsAcrossDonors) {
  Rig rig(3);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  reg.add_donor(*rig.nodes[2]);
  const auto a = reg.acquire(8192, /*exclude=*/0);
  const auto b = reg.acquire(8192, 0);
  const auto c = reg.acquire(8192, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);  // wrapped around
}

TEST(Registry, ExcludesRequestingNode) {
  Rig rig(2);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[0]);
  EXPECT_EQ(reg.acquire(8192, /*exclude=*/0), net::kInvalidNode);
  EXPECT_EQ(reg.acquire(8192, 1), 0u);
}

TEST(Registry, ExhaustedPoolReturnsInvalid) {
  Rig rig(2, /*donor_dram=*/16 * 8192);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(reg.acquire(8192, 0), net::kInvalidNode);
  }
  EXPECT_EQ(reg.acquire(8192, 0), net::kInvalidNode);
  reg.release(1, 8192);
  EXPECT_NE(reg.acquire(8192, 0), net::kInvalidNode);
}

TEST(Registry, RevocationNotifiesObservers) {
  Rig rig(2);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  net::NodeId gone = net::kInvalidNode;
  bool was_graceful = false;
  reg.add_observer([&](net::NodeId id, bool graceful) {
    gone = id;
    was_graceful = graceful;
  });
  reg.revoke_donor(1);
  EXPECT_EQ(gone, 1u);
  EXPECT_TRUE(was_graceful);
  EXPECT_FALSE(reg.is_donor(1));
  EXPECT_EQ(reg.acquire(8192, 0), net::kInvalidNode);
}

TEST(DiskPagerTest, FirstTouchIsZeroFillNotDiskRead) {
  Rig rig(1);
  DiskPager pager(*rig.nodes[0], 8192);
  sim::SimTime at = -1;
  pager.page_in(5, [&] { at = rig.engine.now(); });
  rig.engine.run();
  EXPECT_EQ(pager.disk_reads(), 0u);
  EXPECT_LT(at, 1_ms);  // far cheaper than a disk access
}

TEST(DiskPagerTest, WrittenPageComesBackFromDisk) {
  Rig rig(1);
  DiskPager pager(*rig.nodes[0], 8192);
  pager.page_out(5, [] {});
  rig.engine.run();
  sim::SimTime at = -1;
  pager.page_in(5, [&] { at = rig.engine.now(); });
  rig.engine.run();
  EXPECT_EQ(pager.disk_reads(), 1u);
  EXPECT_GT(sim::to_us(at - 0), 10'000);  // a real disk access
}

TEST(NetRam, PageRoundTripGoesRemote) {
  Rig rig(2);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc);
  bool stored = false;
  pager.page_out(3, [&] { stored = true; });
  rig.engine.run();
  EXPECT_TRUE(stored);
  EXPECT_EQ(pager.stats().remote_writes, 1u);
  EXPECT_EQ(pager.remote_pages(), 1u);
  const sim::SimTime read_started = rig.engine.now();
  sim::SimTime read_at = -1;
  pager.page_in(3, [&] { read_at = rig.engine.now(); });
  rig.engine.run();
  EXPECT_EQ(pager.stats().remote_reads, 1u);
  // Table 2: remote-memory service over ATM ~1,050 us vs ~15,850 us disk —
  // an order of magnitude below a disk access, well under 3 ms.
  EXPECT_LT(sim::to_us(read_at - read_started), 3'000);
  EXPECT_GT(sim::to_us(read_at - read_started), 500);
  EXPECT_EQ(rig.nodes[0]->disk().reads(), 0u);
}

TEST(NetRam, FallsBackToDiskWhenPoolExhausted) {
  Rig rig(2, /*donor_dram=*/2 * 8192);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc);
  for (std::uint64_t p = 0; p < 5; ++p) pager.page_out(p, [] {});
  rig.engine.run();
  EXPECT_EQ(pager.stats().remote_writes, 2u);
  EXPECT_EQ(pager.stats().disk_fallback_writes, 3u);
  EXPECT_GT(rig.nodes[0]->disk().writes(), 0u);
}

TEST(NetRam, GracefulRevocationRehomesPages) {
  Rig rig(3);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  reg.add_donor(*rig.nodes[2]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[2]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc);
  pager.page_out(1, [] {});
  pager.page_out(2, [] {});
  rig.engine.run();
  reg.revoke_donor(1);
  rig.engine.run();
  // Pages formerly on node 1 moved (to node 2 here); none lost.
  EXPECT_GT(pager.stats().rehomed_pages, 0u);
  EXPECT_EQ(pager.stats().lost_pages, 0u);
  EXPECT_EQ(pager.remote_pages(), 2u);
}

TEST(NetRam, DonorCrashLosesPages) {
  Rig rig(2);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc);
  pager.page_out(7, [] {});
  rig.engine.run();
  rig.nodes[1]->crash();
  reg.donor_crashed(1);
  EXPECT_EQ(pager.stats().lost_pages, 1u);
  // The lost page now reads as zero-fill (cheap), not a hang.
  bool ok = false;
  pager.page_in(7, [&] { ok = true; });
  rig.engine.run();
  EXPECT_TRUE(ok);
}

TEST(NetRam, ReadaheadAbsorbsSequentialFaults) {
  Rig rig(3, /*donor_dram=*/256ull << 20);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  reg.add_donor(*rig.nodes[2]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[2]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc,
                        /*readahead=*/true);
  // Park 32 pages remotely, then fault them back in order with think time
  // between faults (so prefetches can land).
  for (std::uint64_t p = 0; p < 32; ++p) pager.page_out(p, [] {});
  rig.engine.run();
  int served = 0;
  for (std::uint64_t p = 0; p < 32; ++p) {
    rig.engine.schedule_at(rig.engine.now() + p * 10 * sim::kMillisecond,
                           [&pager, &served, p] {
                             pager.page_in(p, [&served] { ++served; });
                           });
  }
  rig.engine.run();
  EXPECT_EQ(served, 32);
  EXPECT_GT(pager.stats().prefetch_hits, 20u);
  // Most faults never crossed the network synchronously.
  EXPECT_LT(pager.stats().remote_reads, 12u);
}

TEST(NetRam, ReadaheadDoesNotHelpRandomAccess) {
  Rig rig(3, /*donor_dram=*/256ull << 20);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  reg.add_donor(*rig.nodes[2]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[2]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc,
                        /*readahead=*/true);
  for (std::uint64_t p = 0; p < 64; ++p) pager.page_out(p, [] {});
  rig.engine.run();
  // Fault pages in a scattered order: successors are rarely next.
  sim::Pcg32 rng(9);
  std::vector<std::uint32_t> order(64);
  for (std::uint32_t i = 0; i < 64; ++i) order[i] = i;
  rng.shuffle(order);
  int served = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rig.engine.schedule_at(rig.engine.now() + i * 10 * sim::kMillisecond,
                           [&pager, &served, p = order[i]] {
                             pager.page_in(p, [&served] { ++served; });
                           });
  }
  rig.engine.run();
  EXPECT_EQ(served, 64);
  // Sequential prediction mostly misses under a random reference string.
  EXPECT_LT(pager.stats().prefetch_hits, 16u);
}

TEST(NetRam, ReadaheadCopyIsInvalidatedByPageOut) {
  Rig rig(2);
  IdleMemoryRegistry reg;
  reg.add_donor(*rig.nodes[1]);
  install_donor_service(*rig.rpc, *rig.nodes[1]);
  NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc,
                        /*readahead=*/true);
  pager.page_out(1, [] {});
  pager.page_out(2, [] {});
  rig.engine.run();
  pager.page_in(1, [] {});  // triggers prefetch of page 2
  rig.engine.run();
  // Page 2 is rewritten before its fault: the prefetched copy is stale
  // and must not be served.
  pager.page_out(2, [] {});
  rig.engine.run();
  const auto hits_before = pager.stats().prefetch_hits;
  pager.page_in(2, [] {});
  rig.engine.run();
  EXPECT_EQ(pager.stats().prefetch_hits, hits_before);
}

TEST(Multigrid, InMemoryRunIsPureCompute) {
  Rig rig(1);
  DiskPager pager(*rig.nodes[0], 8192);
  MultigridParams mp;
  mp.problem_bytes = 8ull << 20;  // 1,024 pages
  mp.sweeps = 2;
  os::AddressSpace space(rig.engine, /*frames=*/2048, 8192, pager);
  sim::Duration elapsed = -1;
  MultigridRun run(*rig.nodes[0], space, mp, [&](sim::Duration d) {
    elapsed = d;
  });
  run.start();
  rig.engine.run();
  const auto pure_compute = 2 * 1024 * mp.compute_per_page;
  ASSERT_GT(elapsed, 0);
  // Everything fits: runtime is compute plus cheap first-touch fills.
  EXPECT_LT(sim::to_sec(elapsed), sim::to_sec(pure_compute) * 1.1);
  EXPECT_EQ(pager.disk_reads(), 0u);
}

TEST(Multigrid, OversizedProblemThrashesDiskButNotNetram) {
  // A 24 MB problem on an 8 MB workstation: disk paging vs network RAM.
  const std::uint64_t problem = 24ull << 20;
  const std::uint32_t frames = (8ull << 20) / 8192;

  sim::Duration disk_time = 0, netram_time = 0;
  {
    Rig rig(2);
    DiskPager pager(*rig.nodes[0], 8192);
    os::AddressSpace space(rig.engine, frames, 8192, pager);
    MultigridParams mp;
    mp.problem_bytes = problem;
    mp.sweeps = 2;
    MultigridRun run(*rig.nodes[0], space, mp,
                     [&](sim::Duration d) { disk_time = d; });
    run.start();
    rig.engine.run();
  }
  {
    Rig rig(2, /*donor_dram=*/256ull << 20);
    IdleMemoryRegistry reg;
    reg.add_donor(*rig.nodes[1]);
    install_donor_service(*rig.rpc, *rig.nodes[1]);
    NetworkRamPager pager(*rig.nodes[0], 8192, reg, *rig.rpc);
    os::AddressSpace space(rig.engine, frames, 8192, pager);
    MultigridParams mp;
    mp.problem_bytes = problem;
    mp.sweeps = 2;
    MultigridRun run(*rig.nodes[0], space, mp,
                     [&](sim::Duration d) { netram_time = d; });
    run.start();
    rig.engine.run();
    EXPECT_GT(pager.stats().remote_reads, 0u);
  }
  ASSERT_GT(disk_time, 0);
  ASSERT_GT(netram_time, 0);
  // Figure 2's claim: network RAM is several times faster than thrashing.
  EXPECT_GT(static_cast<double>(disk_time) /
                static_cast<double>(netram_time),
            2.5);
}

}  // namespace
}  // namespace now::netram
