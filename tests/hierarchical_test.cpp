// The building-scale fat tree: topology arithmetic, golden per-hop timing
// (hand-computed finish times under trunk contention), rack-aligned
// partitioning, and thread-count determinism of a kBuildingNow cluster.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "net/hierarchical.hpp"
#include "net/presets.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"

namespace now::net {
namespace {

using sim::kMicrosecond;

Packet make_packet(NodeId src, NodeId dst, std::uint32_t bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  return p;
}

// A fabric whose numbers are trivial to hand-compute: 1 us per byte,
// 2 us per switch crossing, store-and-forward, no framing.
FabricParams slow_fabric() {
  FabricParams p;
  p.link_bandwidth_bps = 8e6;  // 1 us/byte
  p.latency = 2 * kMicrosecond;
  p.header_bytes = 0;
  p.cut_through = false;
  return p;
}

HierarchicalParams tiny_tree(std::uint32_t uplinks) {
  HierarchicalParams p;
  p.fabric = slow_fabric();
  p.topo.nodes_per_rack = 2;  // racks {0,1} and {2,3}
  p.topo.uplinks_per_rack = uplinks;
  return p;
}

// --- Topology arithmetic ---------------------------------------------------

TEST(FatTreeTopology, GoldenRoutes) {
  TopologyParams tp;
  tp.nodes_per_rack = 32;
  tp.uplinks_per_rack = 8;
  FatTreeTopology topo(tp);

  const Route local = topo.route(0, 1);
  EXPECT_TRUE(local.rack_local);
  EXPECT_EQ(local.switch_hops, 1u);
  EXPECT_EQ(local.links, 2u);

  const Route cross = topo.route(0, 33);
  EXPECT_FALSE(cross.rack_local);
  EXPECT_EQ(cross.src_rack, 0u);
  EXPECT_EQ(cross.dst_rack, 1u);
  EXPECT_EQ(cross.switch_hops, 3u);
  EXPECT_EQ(cross.links, 4u);
  // D-mod-k: the spine is a pure function of the destination.
  EXPECT_EQ(cross.spine, 33u % 8u);
  EXPECT_EQ(topo.route(70, 33).spine, cross.spine);
}

TEST(FatTreeTopology, RackMathAndOversubscription) {
  TopologyParams tp;
  tp.nodes_per_rack = 32;
  tp.uplinks_per_rack = 8;
  FatTreeTopology topo(tp);
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(31), 0u);
  EXPECT_EQ(topo.rack_of(32), 1u);
  EXPECT_TRUE(topo.rack_local(0, 31));
  EXPECT_FALSE(topo.rack_local(31, 32));
  EXPECT_EQ(topo.racks_for(1023), 32u);
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 4.0);
  EXPECT_EQ(topo.trunk_index(3, 5), 3u * 8u + 5u);
  EXPECT_FALSE(topo.describe().empty());
}

TEST(FatTreeTopology, ClampsDegenerateUplinks) {
  TopologyParams none;
  none.nodes_per_rack = 8;
  none.uplinks_per_rack = 0;
  EXPECT_EQ(FatTreeTopology(none).uplinks_per_rack(), 1u);
  TopologyParams fat;
  fat.nodes_per_rack = 8;
  fat.uplinks_per_rack = 64;
  EXPECT_EQ(FatTreeTopology(fat).uplinks_per_rack(), 8u);
}

TEST(Presets, BuildingNowShapes) {
  const HierarchicalParams p = building_now(32, 32, 4.0);
  EXPECT_EQ(p.topo.racks, 32u);
  EXPECT_EQ(p.topo.nodes_per_rack, 32u);
  EXPECT_EQ(p.topo.uplinks_per_rack, 8u);
  EXPECT_EQ(building_now(4, 32, 1.0).topo.uplinks_per_rack, 32u);
  // Oversubscription beyond the rack width floors at one trunk.
  EXPECT_EQ(building_now(2, 16, 64.0).topo.uplinks_per_rack, 1u);
}

// --- Golden per-hop timing -------------------------------------------------
//
// slow_fabric + 2-node racks, 100-byte packets (ser = 100 us, L = 2 us),
// store-and-forward.  Hand-computed: each hop starts when the packet has
// fully left the previous link (prev_done + L) or when the link frees,
// whichever is later, and occupies it for one serialization.

TEST(HierarchicalNetwork, RackLocalMatchesFlatSwitch) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, tiny_tree(1));
  sim::SimTime at = -1;
  net.attach(0, [](Packet&&) {});
  net.attach(1, [&](Packet&&) { at = eng.now(); });
  net.send(make_packet(0, 1, 100));
  eng.run();
  // host up [0,100] --L--> host down [102,202]: the flat switched fabric's
  // store-and-forward formula exactly.
  EXPECT_EQ(at, sim::from_us(202));
  EXPECT_EQ(net.hier_stats().rack_local_packets, 1u);
  EXPECT_EQ(net.hier_stats().cross_rack_packets, 0u);
}

TEST(HierarchicalNetwork, CrossRackSharedTrunkQueues) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, tiny_tree(1));
  std::vector<std::pair<NodeId, sim::SimTime>> deliveries;
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&, n](Packet&&) { deliveries.emplace_back(n, eng.now()); });
  }
  // Two same-instant sends from different hosts into the single shared
  // trunk.  0->2 walks up[0,100], trunk-up[102,202], trunk-down[204,304],
  // down[306,406].  1->3 has its own host uplink [0,100] but finds the
  // trunk busy until 202: trunk-up[202,302], trunk-down[304,404],
  // down[406,506].
  net.send(make_packet(0, 2, 100));
  net.send(make_packet(1, 3, 100));
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, 2u);
  EXPECT_EQ(deliveries[0].second, sim::from_us(406));
  EXPECT_EQ(deliveries[1].first, 3u);
  EXPECT_EQ(deliveries[1].second, sim::from_us(506));
  EXPECT_EQ(net.hier_stats().cross_rack_packets, 2u);
}

TEST(HierarchicalNetwork, SecondUplinkRemovesContention) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, tiny_tree(2));
  std::vector<sim::SimTime> at;
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&](Packet&&) { at.push_back(eng.now()); });
  }
  // spine_of(2) = 0 and spine_of(3) = 1: disjoint trunks, no queueing —
  // both packets land at the uncontended 406 us.
  net.send(make_packet(0, 2, 100));
  net.send(make_packet(1, 3, 100));
  eng.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], sim::from_us(406));
  EXPECT_EQ(at[1], sim::from_us(406));
}

TEST(HierarchicalNetwork, UnloadedTransitMatchesDelivery) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, tiny_tree(1));
  sim::SimTime at = -1;
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&](Packet&&) { at = eng.now(); });
  }
  net.send(make_packet(0, 2, 100));
  eng.run();
  EXPECT_EQ(at, net.unloaded_transit(0, 2, 100));
  EXPECT_EQ(net.unloaded_transit(0, 2, 100), sim::from_us(406));
  EXPECT_EQ(net.unloaded_transit(0, 1, 100), sim::from_us(202));
}

TEST(HierarchicalNetwork, CutThroughPipelinesAcrossHops) {
  HierarchicalParams p = tiny_tree(1);
  p.fabric.cut_through = true;
  sim::Engine eng;
  HierarchicalNetwork net(eng, p);
  sim::SimTime at = -1;
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&](Packet&&) { at = eng.now(); });
  }
  net.send(make_packet(0, 2, 100));
  eng.run();
  // Wormhole: one serialization end to end plus 3 switch crossings.
  EXPECT_EQ(at, sim::from_us(100 + 3 * 2));
  EXPECT_EQ(at, net.unloaded_transit(0, 2, 100));
}

TEST(HierarchicalNetwork, MinLatencyIsTheEdgeHopBound) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, tiny_tree(1));
  // The tightest cross-node interaction is rack-local through one edge
  // switch — the safe conservative lookahead for rack-aligned lanes.
  EXPECT_EQ(net.min_latency(), 2 * kMicrosecond);
}

TEST(HierarchicalNetwork, ThousandNodeSmoke) {
  sim::Engine eng;
  HierarchicalNetwork net(eng, building_now(32, 32, 4.0));
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < 1024; ++n) {
    net.attach(n, [&](Packet&&) { ++delivered; });
  }
  for (NodeId n = 0; n < 1024; ++n) {
    net.send(make_packet(n, (n + 512) % 1024, 512));
  }
  eng.run();
  EXPECT_EQ(delivered, 1024u);
  EXPECT_EQ(net.hier_stats().cross_rack_packets, 1024u);
  EXPECT_EQ(net.stats().packets_delivered, 1024u);
  // Attach-time registration: the per-port instruments exist without any
  // packet-path lookups having created them.
  EXPECT_NE(obs::metrics().find_gauge("net.link1023.queue_us"), nullptr);
  EXPECT_NE(obs::metrics().find_gauge("net.rack31.spine7.queue_us"),
            nullptr);
}

// --- Rack-aligned partitioning --------------------------------------------

TEST(ParallelEngine, AlignKeepsRacksOnOneLane) {
  sim::Engine global;
  sim::ParallelConfig pc;
  pc.threads = 4;
  pc.nodes = 128;
  pc.align = 32;
  pc.lookahead = 1;
  sim::ParallelEngine pe(global, pc);
  EXPECT_EQ(pe.lanes(), 4u);
  for (std::uint32_t rack = 0; rack < 4; ++rack) {
    const unsigned lane = pe.lane_of(rack * 32);
    for (std::uint32_t i = 1; i < 32; ++i) {
      EXPECT_EQ(pe.lane_of(rack * 32 + i), lane);
    }
  }
  EXPECT_NE(pe.lane_of(0), pe.lane_of(127));
}

TEST(ParallelEngine, ThreadsClampToAlignmentGroups) {
  sim::Engine global;
  sim::ParallelConfig pc;
  pc.threads = 16;  // more lanes than racks
  pc.nodes = 64;
  pc.align = 32;
  pc.lookahead = 1;
  sim::ParallelEngine pe(global, pc);
  EXPECT_EQ(pe.lanes(), 2u);
}

}  // namespace
}  // namespace now::net

// --- Thread-count determinism on the building fabric -----------------------

namespace {

using namespace now;

struct EchoResult {
  std::vector<std::uint64_t> ops;
  std::vector<std::uint64_t> latency;
  bool operator==(const EchoResult& o) const {
    return ops == o.ops && latency == o.latency;
  }
};

// 64 nodes (two racks), every node echoing against the node half the
// building away, so every call crosses the rack boundary — the worst case
// for lane-aligned partitioning.
EchoResult run_building_cluster(unsigned threads) {
  constexpr std::uint32_t kNodes = 64;
  constexpr proto::MethodId kEcho = 9;
  const sim::SimTime horizon = 5 * sim::kMillisecond;
  ClusterConfig cfg;
  cfg.workstations = kNodes;
  cfg.fabric = Fabric::kBuildingNow;
  cfg.building = net::building_now(2, 32, 4.0);
  cfg.with_glunix = false;
  cfg.threads = threads;
  cfg.partitioning = Partitioning::kNodeLocal;
  Cluster c(cfg);

  auto state = std::make_shared<EchoResult>();
  state->ops.assign(kNodes, 0);
  state->latency.assign(kNodes, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    c.rpc().register_method(
        i, kEcho, [](net::NodeId, std::any req, proto::RpcLayer::ReplyFn r) {
          r(64, std::move(req));
        });
  }
  auto issue = std::make_shared<std::function<void(std::uint32_t)>>();
  *issue = [&c, state, issue, horizon](std::uint32_t i) {
    sim::Engine& e = c.network().engine_for(i);
    if (e.now() >= horizon) return;
    const sim::SimTime t0 = e.now();
    c.rpc().call(i, (i + kNodes / 2) % kNodes, kEcho, 256, std::any{},
                 [&c, state, issue, i, t0](std::any) {
                   ++state->ops[i];
                   state->latency[i] += static_cast<std::uint64_t>(
                       c.network().engine_for(i).now() - t0);
                   c.network().engine_for(i).schedule_in(
                       20 * sim::kMicrosecond, [issue, i] {
                         if (*issue) (*issue)(i);
                       });
                 });
  };
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    c.network().engine_for(i).schedule_at(i % 7, [issue, i] {
      if (*issue) (*issue)(i);
    });
  }
  c.run_until(horizon + sim::kMillisecond);
  *issue = nullptr;
  EchoResult r = *state;
  return r;
}

TEST(BuildingCluster, ThreadCountInvariantResults) {
  const EchoResult serial = run_building_cluster(1);
  std::uint64_t total = 0;
  for (const std::uint64_t n : serial.ops) total += n;
  EXPECT_GT(total, 0u);
  EXPECT_TRUE(serial == run_building_cluster(2));
  EXPECT_TRUE(serial == run_building_cluster(4));
}

}  // namespace
